// runner: command-line front-end over api::run_one. One run per
// invocation; prints the per-run JSON record (telemetry block included)
// to stdout and optionally writes it, plus a Chrome trace, to disk.
//
//   runner --generator er:n=1048576,deg=4 --solver israeli_itai
//          --threads 4 --trace out.json
//   runner --generator grid:rows=64,cols=64 --solver bipartite_mcm
//          --lca auto --lca-queries 5000 --json-dir bench/out
//   runner --generator er:n=4096,deg=8 --solver israeli_itai
//          --faults drop10
//
// Flags mirror api::RunSpec; see src/api/runner.hpp for semantics.
//
// Exit codes: 0 success, 1 runtime failure (trace write, I/O, internal
// error), 2 rejected input — a malformed or unknown generator / config
// / stream / fault spec, reported as one `runner: invalid spec:` line
// on stderr. run_one validates every spec string (generator, solver
// config, fault plan, dynamic stream, maintainer config) before any
// solve work, so rejection is fast and uniform across legs.
#include <cstdio>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>

#include "api/runner.hpp"
#include "util/options.hpp"

namespace {

void usage() {
  std::printf(
      "usage: runner --generator SPEC --solver NAME [options]\n"
      "  --config KV          solver config (k1=v1,k2=v2)\n"
      "  --seed N             instance seed (default 1)\n"
      "  --solver-seed N      solver seed (default 1)\n"
      "  --threads N          1 = inline, 0 = hardware concurrency\n"
      "  --shards N           0 = auto (L2-sized), 1 = single shard\n"
      "  --oracle NAME        auto | none | registry solver\n"
      "  --feed-oracle        pass the exact optimum to the solver\n"
      "  --lca NAME           LCA leg: auto | oracle name\n"
      "  --lca-queries N      0 = every edge once\n"
      "  --lca-cache N        oracle memo bound (0 = default)\n"
      "  --dynamic NAME       dynamic leg: greedy | repair | scratch\n"
      "  --dynamic-stream S   update-stream spec (required with --dynamic)\n"
      "  --dynamic-config KV  maintainer config\n"
      "  --dynamic-checkpoints N  ratio sample points (0 = off, default 8)\n"
      "  --faults SPEC        fault preset (drop10|dup5|delay4|reorder|\n"
      "                       flap1|advdel|chaos) or name:k=v,... plan;\n"
      "                       flap/adversarial plans need --dynamic\n"
      "  --trace PATH         write a Chrome/Perfetto trace of the run\n"
      "  --no-telemetry       skip metric collection (no telemetry block)\n"
      "  --json-dir DIR       also write the record to DIR\n");
}

}  // namespace

int main(int argc, char** argv) {
  const lps::Options opts(argc, argv);
  if (opts.get_bool("help", false) || argc <= 1) {
    usage();
    return argc <= 1 ? 2 : 0;
  }
  lps::api::RunSpec spec;
  spec.generator = opts.get("generator", "");
  spec.solver = opts.get("solver", "");
  if (spec.generator.empty() || spec.solver.empty()) {
    usage();
    return 2;
  }
  spec.config = opts.get("config", "");
  spec.instance_seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  spec.solver_seed =
      static_cast<std::uint64_t>(opts.get_int("solver-seed", 1));
  spec.threads = static_cast<unsigned>(opts.get_int("threads", 1));
  spec.shards = static_cast<unsigned>(opts.get_int("shards", 0));
  spec.oracle = opts.get("oracle", "auto");
  spec.feed_oracle = opts.get_bool("feed-oracle", false);
  spec.lca = opts.get("lca", "");
  spec.lca_queries =
      static_cast<std::uint64_t>(opts.get_int("lca-queries", 0));
  spec.lca_cache = static_cast<std::uint64_t>(opts.get_int("lca-cache", 0));
  spec.dynamic = opts.get("dynamic", "");
  spec.dynamic_stream = opts.get("dynamic-stream", "");
  spec.dynamic_config = opts.get("dynamic-config", "");
  spec.dynamic_checkpoints =
      static_cast<std::uint64_t>(opts.get_int("dynamic-checkpoints", 8));
  spec.faults = opts.get("faults", "");
  spec.trace = opts.get("trace", "");
  spec.telemetry = !opts.get_bool("no-telemetry", false);

  try {
    const lps::api::RunResult result = lps::api::run_one(spec);
    std::cout << result.to_json() << "\n";
    const std::string dir = opts.get("json-dir", "");
    if (!dir.empty()) {
      const std::string path = lps::api::write_json(result, dir);
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    if (!result.trace_path.empty()) {
      std::fprintf(stderr, "trace written to %s\n",
                   result.trace_path.c_str());
    } else if (!spec.trace.empty()) {
      std::fprintf(stderr, "runner: failed to write trace to %s\n",
                   spec.trace.c_str());
      return 1;
    }
  } catch (const std::invalid_argument& e) {
    // Every malformed spec string — generator, solver name/config,
    // fault plan, dynamic stream, maintainer config — lands here via
    // run_one's eager validation: one diagnostic line, exit 2.
    std::fprintf(stderr, "runner: invalid spec: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "runner: %s\n", e.what());
    return 1;
  }
  return 0;
}
