// runner: command-line front-end over api::run_one. One run per
// invocation; prints the per-run JSON record (telemetry block included)
// to stdout and optionally writes it, plus a Chrome trace, to disk.
//
//   runner --generator er:n=1048576,deg=4 --solver israeli_itai
//          --threads 4 --trace out.json
//   runner --generator grid:rows=64,cols=64 --solver bipartite_mcm
//          --lca auto --lca-queries 5000 --json-dir bench/out
//
// Flags mirror api::RunSpec; see src/api/runner.hpp for semantics.
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "api/runner.hpp"
#include "util/options.hpp"

namespace {

void usage() {
  std::printf(
      "usage: runner --generator SPEC --solver NAME [options]\n"
      "  --config KV          solver config (k1=v1,k2=v2)\n"
      "  --seed N             instance seed (default 1)\n"
      "  --solver-seed N      solver seed (default 1)\n"
      "  --threads N          1 = inline, 0 = hardware concurrency\n"
      "  --shards N           0 = auto (L2-sized), 1 = single shard\n"
      "  --oracle NAME        auto | none | registry solver\n"
      "  --feed-oracle        pass the exact optimum to the solver\n"
      "  --lca NAME           LCA leg: auto | oracle name\n"
      "  --lca-queries N      0 = every edge once\n"
      "  --lca-cache N        oracle memo bound (0 = default)\n"
      "  --dynamic NAME       dynamic leg: greedy | repair | scratch\n"
      "  --dynamic-stream S   update-stream spec (required with --dynamic)\n"
      "  --dynamic-config KV  maintainer config\n"
      "  --trace PATH         write a Chrome/Perfetto trace of the run\n"
      "  --no-telemetry       skip metric collection (no telemetry block)\n"
      "  --json-dir DIR       also write the record to DIR\n");
}

}  // namespace

int main(int argc, char** argv) {
  const lps::Options opts(argc, argv);
  if (opts.get_bool("help", false) || argc <= 1) {
    usage();
    return argc <= 1 ? 2 : 0;
  }
  lps::api::RunSpec spec;
  spec.generator = opts.get("generator", "");
  spec.solver = opts.get("solver", "");
  if (spec.generator.empty() || spec.solver.empty()) {
    usage();
    return 2;
  }
  spec.config = opts.get("config", "");
  spec.instance_seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  spec.solver_seed =
      static_cast<std::uint64_t>(opts.get_int("solver-seed", 1));
  spec.threads = static_cast<unsigned>(opts.get_int("threads", 1));
  spec.shards = static_cast<unsigned>(opts.get_int("shards", 0));
  spec.oracle = opts.get("oracle", "auto");
  spec.feed_oracle = opts.get_bool("feed-oracle", false);
  spec.lca = opts.get("lca", "");
  spec.lca_queries =
      static_cast<std::uint64_t>(opts.get_int("lca-queries", 0));
  spec.lca_cache = static_cast<std::uint64_t>(opts.get_int("lca-cache", 0));
  spec.dynamic = opts.get("dynamic", "");
  spec.dynamic_stream = opts.get("dynamic-stream", "");
  spec.dynamic_config = opts.get("dynamic-config", "");
  spec.trace = opts.get("trace", "");
  spec.telemetry = !opts.get_bool("no-telemetry", false);

  try {
    const lps::api::RunResult result = lps::api::run_one(spec);
    std::cout << result.to_json() << "\n";
    const std::string dir = opts.get("json-dir", "");
    if (!dir.empty()) {
      const std::string path = lps::api::write_json(result, dir);
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    if (!result.trace_path.empty()) {
      std::fprintf(stderr, "trace written to %s\n",
                   result.trace_path.c_str());
    } else if (!spec.trace.empty()) {
      std::fprintf(stderr, "runner: failed to write trace to %s\n",
                   spec.trace.c_str());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "runner: %s\n", e.what());
    return 1;
  }
  return 0;
}
