// runner: command-line front-end over api::run_one. One run per
// invocation; prints the per-run JSON record (telemetry block included)
// to stdout and optionally writes it, plus a Chrome trace and a
// structured event log, to disk.
//
//   runner --generator er:n=1048576,deg=4 --solver israeli_itai
//          --threads 4 --trace out.json
//   runner --generator grid:rows=64,cols=64 --solver bipartite_mcm
//          --lca auto --lca-queries 5000 --json-dir bench/out
//   runner --generator er:n=4096,deg=8 --solver israeli_itai
//          --faults drop10 --events events.jsonl
//   runner --generator er:n=1048576,deg=4 --solver israeli_itai
//          --monitor --stall-timeout-ms 30000 --stall-abort
//
// Flags mirror api::RunSpec; see src/api/runner.hpp for semantics.
//
// Output contract: stdout carries exactly one line — the run's JSON
// record — so pipelines can parse it unconditionally. Everything else
// (status lines, watchdog dumps, file-written notes, diagnostics) goes
// to stderr. --log-level tunes the stderr side only: quiet drops the
// informational notes, debug adds a resolved-spec echo.
//
// Exit codes: 0 success, 1 runtime failure (trace write, I/O, internal
// error), 2 rejected input — a malformed or unknown generator / config
// / stream / fault spec, reported as one `runner: invalid spec:` line
// on stderr. run_one validates every spec string (generator, solver
// config, fault plan, dynamic stream, maintainer config) before any
// solve work, so rejection is fast and uniform across legs. A stall
// abort (--stall-abort) exits with telemetry::kWatchdogExitCode (86).
#include <cstdio>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>

#include "api/runner.hpp"
#include "util/options.hpp"

namespace {

void usage() {
  std::printf(
      "usage: runner --generator SPEC --solver NAME [options]\n"
      "  --config KV          solver config (k1=v1,k2=v2)\n"
      "  --seed N             instance seed (default 1)\n"
      "  --solver-seed N      solver seed (default 1)\n"
      "  --threads N          1 = inline, 0 = hardware concurrency\n"
      "  --shards N           0 = auto (L2-sized), 1 = single shard\n"
      "  --oracle NAME        auto | none | registry solver\n"
      "  --feed-oracle        pass the exact optimum to the solver\n"
      "  --lca NAME           LCA leg: auto | oracle name\n"
      "  --lca-queries N      0 = every edge once\n"
      "  --lca-cache N        oracle memo bound (0 = default)\n"
      "  --dynamic NAME       dynamic leg: greedy | repair | scratch\n"
      "  --dynamic-stream S   update-stream spec (required with --dynamic)\n"
      "  --dynamic-config KV  maintainer config\n"
      "  --dynamic-checkpoints N  ratio sample points (0 = off, default 8)\n"
      "  --faults SPEC        fault preset (drop10|dup5|delay4|reorder|\n"
      "                       flap1|advdel|chaos) or name:k=v,... plan;\n"
      "                       flap/adversarial plans need --dynamic\n"
      "  --trace PATH         write a Chrome/Perfetto trace of the run\n"
      "  --events PATH        write the structured event log (JSONL)\n"
      "  --monitor            periodic progress line on stderr (1s)\n"
      "  --monitor-ms N       status-line period in ms (implies --monitor)\n"
      "  --stall-timeout-ms N watchdog: dump state when no round\n"
      "                       completes for N ms (0 = off)\n"
      "  --stall-abort        exit 86 after the watchdog dump\n"
      "  --ledger PATH|off    run-ledger destination (default\n"
      "                       bench/ledger.jsonl; LPS_LEDGER env overrides)\n"
      "  --log-level L        quiet | info | debug (stderr verbosity;\n"
      "                       stdout always carries only the JSON record)\n"
      "  --no-telemetry       skip metric collection (no telemetry block)\n"
      "  --json-dir DIR       also write the record to DIR\n");
}

}  // namespace

int main(int argc, char** argv) {
  const lps::Options opts(argc, argv);
  if (opts.get_bool("help", false) || argc <= 1) {
    usage();
    return argc <= 1 ? 2 : 0;
  }
  const std::string log_level = opts.get("log-level", "info");
  if (log_level != "quiet" && log_level != "info" && log_level != "debug") {
    std::fprintf(stderr,
                 "runner: invalid spec: unknown log level '%s' "
                 "(expected quiet|info|debug)\n",
                 log_level.c_str());
    return 2;
  }
  const bool quiet = log_level == "quiet";
  const bool debug = log_level == "debug";

  lps::api::RunSpec spec;
  spec.generator = opts.get("generator", "");
  spec.solver = opts.get("solver", "");
  if (spec.generator.empty() || spec.solver.empty()) {
    usage();
    return 2;
  }
  spec.config = opts.get("config", "");
  spec.instance_seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  spec.solver_seed =
      static_cast<std::uint64_t>(opts.get_int("solver-seed", 1));
  spec.threads = static_cast<unsigned>(opts.get_int("threads", 1));
  spec.shards = static_cast<unsigned>(opts.get_int("shards", 0));
  spec.oracle = opts.get("oracle", "auto");
  spec.feed_oracle = opts.get_bool("feed-oracle", false);
  spec.lca = opts.get("lca", "");
  spec.lca_queries =
      static_cast<std::uint64_t>(opts.get_int("lca-queries", 0));
  spec.lca_cache = static_cast<std::uint64_t>(opts.get_int("lca-cache", 0));
  spec.dynamic = opts.get("dynamic", "");
  spec.dynamic_stream = opts.get("dynamic-stream", "");
  spec.dynamic_config = opts.get("dynamic-config", "");
  spec.dynamic_checkpoints =
      static_cast<std::uint64_t>(opts.get_int("dynamic-checkpoints", 8));
  spec.faults = opts.get("faults", "");
  spec.trace = opts.get("trace", "");
  spec.events = opts.get("events", "");
  spec.telemetry = !opts.get_bool("no-telemetry", false);
  const long long monitor_ms = opts.get_int("monitor-ms", 0);
  spec.monitor_ms = monitor_ms > 0 ? static_cast<unsigned>(monitor_ms)
                    : opts.get_bool("monitor", false) ? 1000u
                                                      : 0u;
  spec.stall_timeout_ms =
      static_cast<unsigned>(opts.get_int("stall-timeout-ms", 0));
  spec.stall_abort = opts.get_bool("stall-abort", false);
  spec.ledger = opts.get("ledger", "");

  if (debug) {
    std::fprintf(stderr,
                 "runner: spec: generator=%s solver=%s config='%s' "
                 "seed=%llu solver-seed=%llu threads=%u shards=%u "
                 "oracle=%s faults='%s' dynamic='%s' trace='%s' "
                 "events='%s' monitor-ms=%u stall-timeout-ms=%u\n",
                 spec.generator.c_str(), spec.solver.c_str(),
                 spec.config.c_str(),
                 static_cast<unsigned long long>(spec.instance_seed),
                 static_cast<unsigned long long>(spec.solver_seed),
                 spec.threads, spec.shards, spec.oracle.c_str(),
                 spec.faults.c_str(), spec.dynamic.c_str(),
                 spec.trace.c_str(), spec.events.c_str(), spec.monitor_ms,
                 spec.stall_timeout_ms);
  }

  try {
    const lps::api::RunResult result = lps::api::run_one(spec);
    std::cout << result.to_json() << "\n";
    const std::string dir = opts.get("json-dir", "");
    if (!dir.empty()) {
      const std::string path = lps::api::write_json(result, dir);
      if (!quiet) std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    if (!result.trace_path.empty()) {
      if (!quiet) {
        std::fprintf(stderr, "trace written to %s\n",
                     result.trace_path.c_str());
      }
    } else if (!spec.trace.empty()) {
      std::fprintf(stderr, "runner: failed to write trace to %s\n",
                   spec.trace.c_str());
      return 1;
    }
    if (!result.events_path.empty()) {
      if (!quiet) {
        std::fprintf(stderr, "event log written to %s (%llu events)\n",
                     result.events_path.c_str(),
                     static_cast<unsigned long long>(result.events_recorded));
      }
    } else if (!spec.events.empty()) {
      std::fprintf(stderr, "runner: failed to write event log to %s\n",
                   spec.events.c_str());
      return 1;
    }
    if (result.stalled) {
      std::fprintf(stderr, "runner: watchdog reported a stall (see dump)\n");
    }
  } catch (const std::invalid_argument& e) {
    // Every malformed spec string — generator, solver name/config,
    // fault plan, dynamic stream, maintainer config — lands here via
    // run_one's eager validation: one diagnostic line, exit 2.
    std::fprintf(stderr, "runner: invalid spec: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "runner: %s\n", e.what());
    return 1;
  }
  return 0;
}
