// perf_diff: regression analytics over the run ledger
// (bench/ledger.jsonl — see src/api/ledger.hpp for the record schema)
// plus the checked-in BENCH_*.json baselines.
//
//   perf_diff                               # report on the default ledger
//   perf_diff --ledger L.jsonl --last 8     # trend window of 8 runs
//   perf_diff --check --baseline BENCH_engine.json
//
// Per (config, metric) group the tool reports the latest value, the
// median of the prior K runs, the delta between them, and a coarse
// trend direction; bench rows keyed "engine:n=<n>,deg=<deg>" are
// additionally compared against the matching BENCH_engine.json row —
// per metric, so the rounds/sec and ns/msg series each pin to their
// own baseline column (schema v3 emits both per sweep row).
// A group regresses when the latest value is worse than the prior
// median (or the baseline) by more than --threshold percent, in the
// direction each record's own higher_is_better declares.
//
// Exit codes (pinned; usable as a CI gate next to bench_micro
// --perf-gate): 0 = no regression, 1 = regression verdict (offending
// configs named on stderr), 2 = usage / IO / parse error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "api/ledger.hpp"
#include "telemetry/trace_reader.hpp"

namespace {

using lps::telemetry::JsonValue;

struct LedgerRecord {
  std::string config;
  std::string metric;
  double value = 0.0;
  bool higher_is_better = false;
};

struct Group {
  std::vector<LedgerRecord> records;  // ledger order == chronological
};

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

/// Signed "how much worse is `latest` than `ref`", as a fraction of
/// `ref`. Positive = worse, in the metric's own direction.
double worse_frac(double latest, double ref, bool higher_is_better) {
  if (ref == 0.0) return 0.0;
  const double delta = (latest - ref) / std::fabs(ref);
  return higher_is_better ? -delta : delta;
}

const char* trend_of(const std::vector<double>& window, bool higher_better) {
  if (window.size() < 4) return "n/a";
  const std::size_t half = window.size() / 2;
  const double older = median({window.begin(), window.begin() +
                                                   static_cast<std::ptrdiff_t>(
                                                       window.size() - half)});
  const double newer =
      median({window.end() - static_cast<std::ptrdiff_t>(half), window.end()});
  if (older == 0.0) return "flat";
  const double rel = (newer - older) / std::fabs(older);
  if (std::fabs(rel) < 0.05) return "flat";
  const bool improving = higher_better ? rel > 0.0 : rel < 0.0;
  return improving ? "improving" : "degrading";
}

bool load_ledger(const std::string& path,
                 std::map<std::string, Group>& groups, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue v;
    std::string perr;
    if (!lps::telemetry::parse_json(line, v, &perr)) {
      *error = path + ":" + std::to_string(line_no) + ": " + perr;
      return false;
    }
    const JsonValue* config = v.find("config");
    const JsonValue* metric = v.find("metric");
    const JsonValue* value = v.find("value");
    const JsonValue* hib = v.find("higher_is_better");
    if (config == nullptr || !config->is_string() || metric == nullptr ||
        !metric->is_string() || value == nullptr || !value->is_number() ||
        hib == nullptr || hib->kind != JsonValue::Kind::Bool) {
      *error = path + ":" + std::to_string(line_no) +
               ": record lacks config/metric/value/higher_is_better";
      return false;
    }
    LedgerRecord rec;
    rec.config = config->string;
    rec.metric = metric->string;
    rec.value = value->number;
    rec.higher_is_better = hib->boolean;
    groups[rec.config + " :: " + rec.metric].records.push_back(
        std::move(rec));
  }
  return true;
}

/// BENCH_engine.json rows keyed exactly as the ledger groups are:
/// "engine:n=<n>,deg=<deg> :: <metric>". One baseline row fans out to
/// one entry per metric column it carries, so a ns/msg ledger series
/// never gets compared against a rounds/sec pin (or vice versa).
bool load_baseline(const std::string& path,
                   std::map<std::string, double>& rows, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  JsonValue doc;
  std::string perr;
  if (!lps::telemetry::parse_json(text, doc, &perr)) {
    *error = path + ": " + perr;
    return false;
  }
  const JsonValue* results = doc.find("results");
  if (results == nullptr || !results->is_array()) {
    *error = path + ": no top-level results array";
    return false;
  }
  for (const JsonValue& row : results->array) {
    const JsonValue* n = row.find("n");
    const JsonValue* deg = row.find("avg_deg");
    if (n == nullptr || deg == nullptr) continue;
    const std::string config =
        "engine:n=" +
        std::to_string(static_cast<unsigned long long>(n->number)) +
        ",deg=" +
        std::to_string(static_cast<unsigned long long>(deg->number));
    const JsonValue* rps = row.find("rounds_per_sec");
    if (rps != nullptr) rows[config + " :: rounds_per_sec"] = rps->number;
    const JsonValue* ns = row.find("ns_per_delivered_message");
    if (ns != nullptr) rows[config + " :: ns_per_msg"] = ns->number;
  }
  return true;
}

void usage() {
  std::printf(
      "usage: perf_diff [options]\n"
      "  --ledger PATH     ledger to analyze (default bench/ledger.jsonl,\n"
      "                    or LPS_LEDGER)\n"
      "  --baseline PATH   BENCH_engine.json-style baseline to compare\n"
      "                    engine bench rows against\n"
      "  --last K          trend/median window (default 8)\n"
      "  --threshold PCT   regression threshold in percent (default 20)\n"
      "  --check           terse output: verdict lines only\n"
      "exit codes: 0 ok, 1 regression (configs named), 2 usage/IO error\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string ledger_path;
  std::string baseline_path;
  std::size_t last_k = 8;
  double threshold_pct = 20.0;
  bool check_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_diff: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--ledger") {
      ledger_path = next("--ledger");
    } else if (arg == "--baseline") {
      baseline_path = next("--baseline");
    } else if (arg == "--last") {
      last_k = static_cast<std::size_t>(std::strtoul(next("--last"), nullptr,
                                                     10));
      if (last_k == 0) last_k = 1;
    } else if (arg == "--threshold") {
      threshold_pct = std::strtod(next("--threshold"), nullptr);
    } else if (arg == "--check") {
      check_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "perf_diff: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (ledger_path.empty()) {
    ledger_path = lps::api::resolve_ledger_path();
    if (ledger_path.empty()) {
      std::fprintf(stderr,
                   "perf_diff: ledger disabled via LPS_LEDGER; pass "
                   "--ledger PATH\n");
      return 2;
    }
  }

  std::map<std::string, Group> groups;
  std::string error;
  if (!load_ledger(ledger_path, groups, &error)) {
    std::fprintf(stderr, "perf_diff: %s\n", error.c_str());
    return 2;
  }
  std::map<std::string, double> baseline;
  if (!baseline_path.empty() &&
      !load_baseline(baseline_path, baseline, &error)) {
    std::fprintf(stderr, "perf_diff: %s\n", error.c_str());
    return 2;
  }
  if (groups.empty()) {
    std::printf("perf_diff: %s: empty ledger, nothing to compare\n",
                ledger_path.c_str());
    return 0;
  }

  const double threshold = threshold_pct / 100.0;
  std::vector<std::string> regressions;
  if (!check_only) {
    std::printf("perf_diff: %s (%zu config groups, window %zu, threshold "
                "%.0f%%)\n\n",
                ledger_path.c_str(), groups.size(), last_k, threshold_pct);
    std::printf("%-56s %12s %12s %8s %-10s\n", "config :: metric", "latest",
                "median", "delta", "trend");
  }
  for (const auto& [key, group] : groups) {
    const LedgerRecord& latest = group.records.back();
    // Prior window: up to last_k records before the latest one.
    std::vector<double> prior;
    const std::size_t nrec = group.records.size();
    const std::size_t begin = nrec > last_k + 1 ? nrec - last_k - 1 : 0;
    for (std::size_t i = begin; i + 1 < nrec; ++i) {
      prior.push_back(group.records[i].value);
    }
    std::vector<double> window = prior;
    window.push_back(latest.value);

    double ref = 0.0;
    bool have_ref = false;
    if (!prior.empty()) {
      ref = median(prior);
      have_ref = true;
    }
    double worse = have_ref
                       ? worse_frac(latest.value, ref, latest.higher_is_better)
                       : 0.0;
    bool regressed = have_ref && worse > threshold;
    // Baseline comparison rides on top of the history comparison: a
    // slow drift that never trips the window still trips the pin. The
    // lookup key is the group key (config :: metric), so each metric
    // series pins to its own baseline column.
    const auto base_it = baseline.find(key);
    if (base_it != baseline.end()) {
      const double bworse =
          worse_frac(latest.value, base_it->second, latest.higher_is_better);
      if (bworse > threshold) {
        regressed = true;
        worse = std::max(worse, bworse);
        have_ref = true;
        if (!check_only) {
          std::printf("  baseline %s: %.1f vs %.1f (%.1f%% worse)\n",
                      latest.config.c_str(), latest.value, base_it->second,
                      bworse * 100.0);
        }
      }
    }
    if (!check_only) {
      std::printf("%-56s %12.3f %12.3f %7.1f%% %-10s%s\n", key.c_str(),
                  latest.value, have_ref ? ref : latest.value,
                  have_ref ? worse * 100.0 : 0.0,
                  trend_of(window, latest.higher_is_better),
                  regressed ? "  << REGRESSION" : "");
    }
    if (regressed) regressions.push_back(key);
  }
  if (!regressions.empty()) {
    for (const std::string& r : regressions) {
      std::fprintf(stderr, "perf_diff: regression: %s exceeds %.0f%%\n",
                   r.c_str(), threshold_pct);
    }
    std::fprintf(stderr, "perf_diff: verdict: REGRESSED (%zu of %zu groups)\n",
                 regressions.size(), groups.size());
    return 1;
  }
  std::printf("%sperf_diff: verdict: ok (%zu groups)\n",
              check_only ? "" : "\n", groups.size());
  return 0;
}
