// trace_summary: fold a Chrome-trace JSON (written by --trace on the
// runner/benches) into a text report, or validate it for CI. With
// --events the input is a structured event log (JSONL written by
// --events on the runner / EventLog::write_jsonl) instead of a trace.
//
//   trace_summary out.json              # report: top spans, round
//                                       # percentiles, shard imbalance
//   trace_summary --check out.json      # validate structure; exit 0/1
//   trace_summary --events ev.jsonl     # per-kind counts + timeline
//   trace_summary --check --events ev.jsonl  # validate; also enforces
//                                       # crash/revive pairing
//
// --check accepts any well-formed Chrome trace; the report additionally
// understands the engine span taxonomy (engine.round / engine.exchange.p2
// with shard args) when present. Event-log validation enforces the
// closed vocabulary of telemetry/event_log.hpp, non-decreasing ns
// stamps, and — the recovery invariant — that every `crash` vertex has
// a later `revive`.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "telemetry/event_log.hpp"
#include "telemetry/trace_reader.hpp"

namespace {

using lps::telemetry::TraceDoc;
using lps::telemetry::TraceSpan;

double percentile(std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted_values.size() - 1) + 0.5);
  return sorted_values[std::min(rank, sorted_values.size() - 1)];
}

int report(const TraceDoc& doc, const std::string& path) {
  std::printf("trace: %s\n", path.c_str());
  std::printf("events: %zu (%zu threads named)\n\n", doc.spans.size(),
              doc.thread_names.size());

  // Top spans by total duration.
  struct Agg {
    std::size_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceSpan& s : doc.spans) {
    if (s.ph != 'X') continue;
    Agg& a = by_name[s.name];
    ++a.count;
    a.total_us += s.dur_us;
    a.max_us = std::max(a.max_us, s.dur_us);
  }
  std::vector<std::pair<std::string, Agg>> ranked(by_name.begin(),
                                                  by_name.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  std::printf("%-24s %10s %14s %12s %12s\n", "span", "count", "total_ms",
              "mean_us", "max_us");
  for (std::size_t i = 0; i < ranked.size() && i < 12; ++i) {
    const auto& [name, a] = ranked[i];
    std::printf("%-24s %10zu %14.3f %12.2f %12.2f\n", name.c_str(), a.count,
                a.total_us / 1000.0,
                a.total_us / static_cast<double>(a.count), a.max_us);
  }

  // Round-time percentiles from engine.round spans.
  std::vector<double> rounds;
  for (const TraceSpan& s : doc.spans) {
    if (s.name == "engine.round") rounds.push_back(s.dur_us);
  }
  if (!rounds.empty()) {
    std::sort(rounds.begin(), rounds.end());
    double total = 0.0;
    for (const double r : rounds) total += r;
    std::printf(
        "\nengine rounds: %zu  mean %.2f us  p50 %.2f  p90 %.2f  p99 %.2f  "
        "max %.2f\n",
        rounds.size(), total / static_cast<double>(rounds.size()),
        percentile(rounds, 50), percentile(rounds, 90), percentile(rounds, 99),
        rounds.back());
  }

  // Per-shard imbalance from engine.exchange.p2 spans' shard arg.
  std::map<std::uint64_t, double> shard_us;
  for (const TraceSpan& s : doc.spans) {
    if (s.name != "engine.exchange.p2") continue;
    const auto it = s.args.find("shard");
    if (it == s.args.end()) continue;
    shard_us[static_cast<std::uint64_t>(it->second)] += s.dur_us;
  }
  if (!shard_us.empty()) {
    double total = 0.0;
    double max_us = 0.0;
    std::uint64_t hottest = 0;
    for (const auto& [shard, us] : shard_us) {
      total += us;
      if (us > max_us) {
        max_us = us;
        hottest = shard;
      }
    }
    const double mean = total / static_cast<double>(shard_us.size());
    std::printf(
        "shard exchange: %zu shards  mean %.2f us  hottest #%llu %.2f us  "
        "imbalance %.2fx\n",
        shard_us.size(), mean, static_cast<unsigned long long>(hottest),
        max_us, mean > 0.0 ? max_us / mean : 0.0);
  }
  return 0;
}

int check(const TraceDoc& doc, const std::string& path) {
  // Structure already validated by the loader; enforce the invariants
  // the writer guarantees on top of bare well-formedness.
  for (std::size_t i = 0; i < doc.spans.size(); ++i) {
    const TraceSpan& s = doc.spans[i];
    if (s.ts_us < 0.0 || (s.ph == 'X' && s.dur_us < 0.0)) {
      std::fprintf(stderr, "trace_summary: %s: event %zu has negative ts/dur\n",
                   path.c_str(), i);
      return 1;
    }
    if (s.name.empty()) {
      std::fprintf(stderr, "trace_summary: %s: event %zu has empty name\n",
                   path.c_str(), i);
      return 1;
    }
  }
  std::printf("%s: ok (%zu events)\n", path.c_str(), doc.spans.size());
  return 0;
}

/// Validate (and optionally summarize) an event-log JSONL file. Exit
/// codes match the trace path: 0 ok, 1 any violation.
int events_mode(const std::string& path, bool check_only) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_summary: cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::set<std::string> known;
  for (unsigned k = 0; k < lps::telemetry::kEventKinds; ++k) {
    known.insert(lps::telemetry::event_kind_name(
        static_cast<lps::telemetry::EventKind>(k)));
  }

  std::map<std::string, std::size_t> counts;
  // vertex -> outstanding crashes (a flapping vertex can crash again
  // after a revive; the invariant is crashes(v) == revives(v) overall).
  std::map<std::uint64_t, std::int64_t> down;
  std::string line;
  std::size_t line_no = 0;
  std::size_t total = 0;
  double prev_ns = -1.0;
  double first_ns = 0.0;
  double last_ns = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    lps::telemetry::JsonValue v;
    std::string error;
    if (!lps::telemetry::parse_json(line, v, &error)) {
      std::fprintf(stderr, "trace_summary: %s:%zu: not JSON: %s\n",
                   path.c_str(), line_no, error.c_str());
      return 1;
    }
    if (!v.is_object()) {
      std::fprintf(stderr, "trace_summary: %s:%zu: event is not an object\n",
                   path.c_str(), line_no);
      return 1;
    }
    const lps::telemetry::JsonValue* ev = v.find("ev");
    const lps::telemetry::JsonValue* round = v.find("round");
    const lps::telemetry::JsonValue* ns = v.find("ns");
    if (ev == nullptr || !ev->is_string() || round == nullptr ||
        !round->is_number() || ns == nullptr || !ns->is_number()) {
      std::fprintf(stderr,
                   "trace_summary: %s:%zu: missing ev/round/ns fields\n",
                   path.c_str(), line_no);
      return 1;
    }
    if (known.count(ev->string) == 0) {
      std::fprintf(stderr, "trace_summary: %s:%zu: unknown event kind '%s'\n",
                   path.c_str(), line_no, ev->string.c_str());
      return 1;
    }
    if (ns->number < 0.0 || round->number < 0.0) {
      std::fprintf(stderr, "trace_summary: %s:%zu: negative ns/round\n",
                   path.c_str(), line_no);
      return 1;
    }
    if (ns->number < prev_ns) {
      std::fprintf(stderr,
                   "trace_summary: %s:%zu: ns stamps not sorted "
                   "(%.0f after %.0f)\n",
                   path.c_str(), line_no, ns->number, prev_ns);
      return 1;
    }
    prev_ns = ns->number;
    if (total == 0) first_ns = ns->number;
    last_ns = ns->number;
    ++total;
    ++counts[ev->string];
    if (ev->string == "crash" || ev->string == "revive") {
      const lps::telemetry::JsonValue* vert = v.find("vertex");
      if (vert == nullptr || !vert->is_number()) {
        std::fprintf(stderr,
                     "trace_summary: %s:%zu: %s event lacks a vertex\n",
                     path.c_str(), line_no, ev->string.c_str());
        return 1;
      }
      const auto vid = static_cast<std::uint64_t>(vert->number);
      down[vid] += ev->string == "crash" ? 1 : -1;
      if (down[vid] < 0) {
        std::fprintf(stderr,
                     "trace_summary: %s:%zu: revive of vertex %llu "
                     "without a preceding crash\n",
                     path.c_str(), line_no,
                     static_cast<unsigned long long>(vid));
        return 1;
      }
    }
  }
  // The recovery invariant: every crash eventually paired with a revive
  // (FaultSession's terminal heal guarantees this on a complete run).
  for (const auto& [vid, outstanding] : down) {
    if (outstanding != 0) {
      std::fprintf(stderr,
                   "trace_summary: %s: vertex %llu crashed without a "
                   "matching revive (%lld outstanding)\n",
                   path.c_str(), static_cast<unsigned long long>(vid),
                   static_cast<long long>(outstanding));
      return 1;
    }
  }
  if (check_only) {
    std::printf("%s: ok (%zu events, crash/revive balanced)\n", path.c_str(),
                total);
    return 0;
  }
  std::printf("event log: %s\n", path.c_str());
  std::printf("events: %zu  span: %.3f ms\n\n", total,
              (last_ns - first_ns) / 1e6);
  std::printf("%-12s %10s\n", "kind", "count");
  for (const auto& [kind, count] : counts) {
    std::printf("%-12s %10zu\n", kind.c_str(), count);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  bool events = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--events") {
      events = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: trace_summary [--check] [--events] <trace.json|log.jsonl>\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "trace_summary: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "trace_summary: more than one input file\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(
        stderr,
        "usage: trace_summary [--check] [--events] <trace.json|log.jsonl>\n");
    return 2;
  }
  if (events) return events_mode(path, check_only);
  TraceDoc doc;
  std::string error;
  if (!lps::telemetry::load_chrome_trace_file(path, doc, &error)) {
    std::fprintf(stderr, "trace_summary: %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  return check_only ? check(doc, path) : report(doc, path);
}
