// Dump every registered solver's name, capabilities, default guarantee,
// and description, plus the LCA oracle pairings — the machine-checkable
// inventory the CI smoke step runs and the README table is generated
// from.
//
//   ./list_solvers [--csv]
#include <cstdio>
#include <string>

#include "api/registry.hpp"
#include "lca/oracle.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace lps;
  const Options opts(argc, argv);

  Table t({"name", "capabilities", "guarantee", "lca oracle", "description"});
  for (const std::string& name : api::SolverRegistry::global().names()) {
    const api::MatchingSolver& s = api::SolverRegistry::global().at(name);
    const api::Capabilities caps = s.capabilities();
    std::string cap_str;
    const auto flag = [&cap_str](bool on, const char* label) {
      if (!on) return;
      if (!cap_str.empty()) cap_str += ",";
      cap_str += label;
    };
    flag(caps.bipartite, "bipartite");
    flag(caps.general, "general");
    flag(caps.weighted, "weighted");
    flag(caps.distributed, "distributed");
    flag(caps.exact, "exact");
    flag(caps.maximal, "maximal");
    flag(caps.primitive, "primitive");
    const double g = s.guarantee(api::SolverConfig());
    char g_str[32];
    std::snprintf(g_str, sizeof(g_str), "%.4f", g);
    t.row();
    t.cell(name);
    t.cell(cap_str);
    t.cell(g > 0.0 ? g_str : "-");
    t.cell(lca::has_oracle(name) ? "yes" : "-");
    t.cell(s.description());
  }

  if (opts.get_bool("csv", false)) {
    t.print_csv(std::cout);
  } else {
    std::printf("%zu registered solvers:\n\n", t.num_rows());
    t.print_markdown(std::cout);
  }
  return 0;
}
