// Experiment T3.11 — Theorem 3.11: general graphs, (1-1/k)-MCM w.h.p.
// via random bipartition (Algorithm 4) in O(2^{2k} k^4 log k log n)
// rounds.
//
// Regenerated series: ratio vs blossom, iterations consumed vs the
// paper's 2^{2k+1}(k+1) ln k budget (both adaptive and paper modes), and
// the per-iteration progress that Lemma 3.9 predicts (geometric decay of
// the gap to (1-1/(k+1))|M*|).
#include "bench/bench_common.hpp"
#include "core/general_mcm.hpp"
#include "seq/blossom.hpp"

using namespace lps;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int trials = static_cast<int>(opts.get_int("trials", 3));

  bench::print_header(
      "T3.11: Algorithm 4 on general graphs",
      "(1-1/k)-MCM w.h.p.; iteration budget 2^{2k+1}(k+1) ln k "
      "(paper); adaptive mode stops at the certified ratio");

  Table t({"graph", "n", "k", "paper budget", "iters used (mean, adaptive)",
           "ratio (min)", "target 1-1/k", "rounds (mean)"});
  const auto run_family = [&](const std::string& name, auto make_graph) {
    for (const int k : {2, 3}) {
      double min_ratio = 1.0;
      StreamingStats iters, rounds;
      std::uint64_t budget = general_mcm_paper_budget(k);
      NodeId n = 0;
      for (int trial = 0; trial < trials; ++trial) {
        Graph g = make_graph(trial);
        n = g.num_nodes();
        const std::size_t opt = blossom_mcm(g).size();
        GeneralMcmOptions o;
        o.k = k;
        o.seed = 17 * trial + k;
        o.mode = GeneralMcmOptions::Mode::kAdaptive;
        o.oracle_optimum_size = opt;
        const GeneralMcmResult res = general_mcm(g, o);
        if (opt > 0) {
          min_ratio = std::min(
              min_ratio, static_cast<double>(res.matching.size()) /
                             static_cast<double>(opt));
        }
        iters.add(static_cast<double>(res.iterations));
        rounds.add(static_cast<double>(res.stats.rounds));
      }
      t.row();
      t.cell(name);
      t.cell(static_cast<std::size_t>(n));
      t.cell(k);
      t.cell(static_cast<std::size_t>(budget));
      t.cell(iters.mean(), 4);
      t.cell(min_ratio, 4);
      t.cell(1.0 - 1.0 / k, 4);
      t.cell(rounds.mean(), 6);
    }
  };
  run_family("ER(n=96, deg 4)", [&](int trial) {
    Rng rng(3000 + trial);
    return erdos_renyi(96, 4.0 / 96, rng);
  });
  run_family("odd cycles C_63", [&](int trial) {
    (void)trial;
    return cycle_graph(63);
  });
  run_family("4-regular n=64", [&](int trial) {
    Rng rng(4000 + trial);
    return random_regular(64, 4, rng);
  });
  bench::print_table(t);

  bench::print_header(
      "T3.11.b: Lemma 3.9 progress per iteration",
      "gap_i = (1-1/(k+1))|M*| - |M_i| decays geometrically (factor "
      "1 - 2^{-2k}/(k+1) per iteration in expectation)");
  Table prog({"iteration", "|M|", "|M*| - |M|", "gap to (1-1/(k+1))|M*|"});
  {
    Rng rng(5000);
    Graph g = erdos_renyi(128, 4.0 / 128, rng);
    const std::size_t opt = blossom_mcm(g).size();
    const int k = 3;
    const double target = (1.0 - 1.0 / (k + 1)) * static_cast<double>(opt);
    // Replay iterations one at a time with a shared seed prefix.
    for (const int iters : {1, 2, 4, 8, 16, 32}) {
      GeneralMcmOptions o;
      o.k = k;
      o.seed = 99;
      o.mode = GeneralMcmOptions::Mode::kPaper;
      o.max_iterations = static_cast<std::uint64_t>(iters);
      const GeneralMcmResult res = general_mcm(g, o);
      prog.row();
      prog.cell(iters);
      prog.cell(res.matching.size());
      prog.cell(static_cast<std::int64_t>(opt) -
                static_cast<std::int64_t>(res.matching.size()));
      prog.cell(std::max(0.0, target -
                                  static_cast<double>(res.matching.size())),
                4);
    }
  }
  bench::print_table(prog);
  return 0;
}
