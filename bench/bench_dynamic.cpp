// Experiment suite DYNAMIC — the fully dynamic matching engine's
// headline claim: under edge churn, maintaining the matching
// incrementally (src/dynamic) costs orders of magnitude less per update
// than re-solving from scratch, while staying within a few percent of
// the from-scratch quality and flipping O(1) matched edges per update.
//
// Each incremental row streams a churn trace through a maintainer via
// the runner's dynamic leg (so the numbers land in the same per-run
// JSON schema as everything else); the scratch baseline is measured by
// timing snapshot+registry-solve round trips per update on the final
// graph — exactly what a static scheduler pays every slot. speedup =
// incremental updates/sec over scratch updates/sec.
//
//   ./bench_dynamic [--smoke] [--max-n 1048576] [--updates 0]
//                   [--sample 20] [--json true] [--json-path BENCH_dynamic.json]
//                   [--trace out.json]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/json.hpp"
#include "api/runner.hpp"
#include "bench/bench_common.hpp"
#include "dynamic/matcher.hpp"
#include "dynamic/stream.hpp"

using namespace lps;
using bench::fmt;

namespace {

/// Updates/sec of the solve-from-scratch path: materialize the final
/// graph of `stream`, then time delete+reinsert updates through the
/// scratch maintainer (snapshot + registry solve + adopt, per update).
double scratch_updates_per_sec(const dynamic::StreamSpec& stream,
                               int sample_updates) {
  dynamic::GreedyDynamicMatcher builder{
      dynamic::DynamicGraph(stream.initial_nodes)};
  builder.apply_trace(stream.trace);
  const dynamic::Snapshot snap = builder.graph().snapshot();
  if (snap.graph.num_edges() == 0) return 0.0;
  auto scratch = dynamic::make_matcher(
      "scratch", dynamic::DynamicGraph::from_graph(snap.graph),
      {{"solver", "greedy_mcm"}});
  int applied = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int j = 0; applied < sample_updates; ++j) {
    const Edge e = snap.graph.edge(static_cast<EdgeId>(
        static_cast<std::size_t>(j) % snap.graph.num_edges()));
    scratch->apply({dynamic::UpdateKind::kDeleteEdge, e.u, e.v});
    scratch->apply({dynamic::UpdateKind::kInsertEdge, e.u, e.v});
    applied += 2;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return secs > 0.0 ? applied / secs : 0.0;
}

struct Row {
  std::int64_t n = 0;
  std::string stream;
  std::string churn;
  std::string maintainer;
  api::RunResult res;
  double scratch_ups = 0.0;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bool smoke = opts.get_bool("smoke", false);
  const std::int64_t max_n = opts.get_int("max-n", smoke ? 4096 : 1048576);
  const std::int64_t updates_override = opts.get_int("updates", 0);
  const int sample = static_cast<int>(opts.get_int("sample", smoke ? 6 : 20));
  const bool emit_json = opts.get_bool("json", !smoke);
  const std::string json_path = opts.get("json-path", "BENCH_dynamic.json");
  const bench::TraceGuard trace(opts);

  bench::print_header(
      "Dynamic matching: incremental maintenance vs solve-from-scratch",
      "under churn the incremental path sustains >= 10x the updates/sec of "
      "re-solving from scratch (low churn, n = 2^18) with O(1) recourse per "
      "update and near-scratch matching quality (ratio ~ 1)");

  Table t({"n", "churn", "maintainer", "m (final)", "updates", "updates/sec",
           "recourse/upd", "ratio", "ratio (min)", "scratch upd/sec",
           "speedup", "valid"});

  std::vector<Row> rows;
  std::vector<std::int64_t> sizes;
  for (const std::int64_t n : {std::int64_t{1} << 12, std::int64_t{1} << 14,
                               std::int64_t{1} << 16, std::int64_t{1} << 18,
                               std::int64_t{1} << 20}) {
    if (n <= max_n) sizes.push_back(n);
  }

  for (const std::int64_t n : sizes) {
    const std::int64_t m0 = 2 * n;
    // Churn rate = stream length relative to the initial edge count.
    for (const auto& [churn_name, frac] :
         std::vector<std::pair<std::string, double>>{
             {"low", 0.05}, {"mid", 0.25}, {"high", 1.0}}) {
      if (smoke && churn_name != "low") continue;
      const std::int64_t updates =
          updates_override > 0
              ? updates_override
              : std::max<std::int64_t>(2000, static_cast<std::int64_t>(
                                                 frac * static_cast<double>(m0)));
      const std::string stream = "churn:n=" + std::to_string(n) +
                                 ",m0=" + std::to_string(m0) +
                                 ",updates=" + std::to_string(updates);
      const dynamic::StreamSpec trace = dynamic::make_update_stream(stream, 101);
      const double scratch_ups = scratch_updates_per_sec(trace, sample);
      for (const char* maintainer : {"greedy", "repair"}) {
        api::RunSpec spec;
        // The static solve is a stand-in (the leg is the point); keep
        // it trivial so the row's cost is the dynamic replay.
        spec.generator = "path:n=2";
        spec.solver = "greedy_mcm";
        spec.oracle = "none";
        spec.instance_seed = 101;
        spec.dynamic = maintainer;
        spec.dynamic_stream = stream;
        spec.dynamic_checkpoints = smoke ? 2 : 4;
        Row row;
        row.n = n;
        row.stream = stream;
        row.churn = churn_name;
        row.maintainer = maintainer;
        row.res = api::run_one(spec);
        row.scratch_ups = scratch_ups;
        row.speedup = scratch_ups > 0.0
                          ? row.res.dynamic_updates_per_sec / scratch_ups
                          : 0.0;
        t.row();
        t.cell(static_cast<std::size_t>(n));
        t.cell(churn_name);
        t.cell(maintainer);
        t.cell(static_cast<std::size_t>(row.res.dynamic_final_edges));
        t.cell(static_cast<std::size_t>(row.res.dynamic_updates));
        t.cell(fmt(row.res.dynamic_updates_per_sec, 0));
        t.cell(fmt(row.res.dynamic_recourse_per_update, 3));
        t.cell(fmt(row.res.dynamic_ratio, 4));
        t.cell(fmt(row.res.dynamic_ratio_min, 4));
        t.cell(fmt(row.scratch_ups, 1));
        t.cell(fmt(row.speedup, 1));
        t.cell(row.res.dynamic_valid ? 1 : 0);
        rows.push_back(std::move(row));
      }
    }
  }
  bench::print_table(t);

  // Smoke is a correctness gate, not a perf gate: every row must hold a
  // valid matching and stay within 2x of the baseline quality.
  bool ok = true;
  for (const Row& row : rows) {
    if (!row.res.dynamic_valid) {
      std::cerr << "FAIL: invalid matching in " << row.maintainer << " @ "
                << row.stream << "\n";
      ok = false;
    }
    if (row.res.dynamic_ratio >= 0.0 && row.res.dynamic_ratio < 0.5) {
      std::cerr << "FAIL: ratio " << row.res.dynamic_ratio << " in "
                << row.maintainer << " @ " << row.stream << "\n";
      ok = false;
    }
  }

  if (emit_json && !rows.empty()) {
    std::ofstream os(json_path);
    os << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      api::JsonObject o;
      o.add("n", static_cast<std::uint64_t>(row.n))
          .add("stream", row.stream)
          .add("churn", row.churn)
          .add("maintainer", row.maintainer)
          .add("updates", row.res.dynamic_updates)
          .add("updates_per_sec", row.res.dynamic_updates_per_sec)
          .add("recourse_per_update", row.res.dynamic_recourse_per_update)
          .add("final_size",
               static_cast<std::uint64_t>(row.res.dynamic_final_size))
          .add("ratio", row.res.dynamic_ratio)
          .add("ratio_min", row.res.dynamic_ratio_min)
          .add("baseline", row.res.dynamic_baseline)
          .add("scratch_updates_per_sec", row.scratch_ups)
          .add("speedup_vs_scratch", row.speedup)
          .add("valid", row.res.dynamic_valid)
          .add("git_sha", row.res.prov_git_sha)
          .add("build_type", row.res.prov_build_type)
          .add("timestamp_utc", row.res.prov_timestamp_utc);
      os << "  " << o.str() << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "]\n";
    std::cout << "wrote " << rows.size() << " rows to " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
