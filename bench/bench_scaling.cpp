// Experiment SCALING — the round-complexity shapes across all four
// algorithm families on a common n-sweep (sparse random graphs of
// constant average degree): O(log n) growth means the rounds/log2(n)
// column stays flat while n doubles. Hoepman's deterministic protocol
// on the adversarial increasing path is included as the Theta(n)
// contrast the paper's related-work table draws.
#include "bench/bench_common.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/hoepman_mwm.hpp"
#include "core/israeli_itai.hpp"
#include "core/weighted_mwm.hpp"

using namespace lps;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int trials = static_cast<int>(opts.get_int("trials", 3));

  bench::print_header(
      "SCALING.a: rounds vs n (sparse ER / bipartite, mean over seeds)",
      "O(log n) round growth for the randomized algorithms");
  Table t({"n", "II rounds", "II /lg n", "T3.8 rounds", "T3.8 /lg n",
           "T4.5 rounds", "T4.5 /lg n"});
  for (const NodeId n : {256u, 512u, 1024u, 2048u, 4096u}) {
    StreamingStats ii, bip, wmwm;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(100 + n + trial);
      {
        const Graph g = erdos_renyi(n, 4.0 / n, rng);
        IsraeliItaiOptions o;
        o.seed = trial + 1;
        ii.add(static_cast<double>(israeli_itai(g, o).stats.rounds));
      }
      {
        const auto bg = random_bipartite(n / 2, n / 2, 4.0 / n * 2, rng);
        BipartiteMcmOptions o;
        o.k = 2;
        o.seed = trial + 2;
        bip.add(static_cast<double>(
            bipartite_mcm(bg.graph, bg.side, o).stats.rounds));
      }
      {
        Graph g = erdos_renyi(n, 4.0 / n, rng);
        auto w = uniform_weights(g.num_edges(), 1.0, 100.0, rng);
        const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
        WeightedMwmOptions o;
        o.eps = 0.1;
        o.seed = trial + 3;
        wmwm.add(static_cast<double>(weighted_mwm(wg, o).stats.rounds));
      }
    }
    const double lg = std::log2(static_cast<double>(n));
    t.row();
    t.cell(static_cast<std::size_t>(n));
    t.cell(ii.mean(), 5);
    t.cell(ii.mean() / lg, 4);
    t.cell(bip.mean(), 5);
    t.cell(bip.mean() / lg, 4);
    t.cell(wmwm.mean(), 5);
    t.cell(wmwm.mean() / lg, 4);
  }
  bench::print_table(t);

  bench::print_header(
      "SCALING.b: deterministic Hoepman [11] on the increasing path",
      "Theta(n) rounds — the O(n) entry in the paper's related work, "
      "and the reason randomization buys O(log n)");
  Table h({"n", "rounds", "rounds/n", "II rounds on same path (mean)"});
  for (const NodeId n : {128u, 256u, 512u, 1024u}) {
    const WeightedGraph wg = increasing_path(n);
    const HoepmanResult res = hoepman_mwm(wg);
    StreamingStats ii;
    for (int trial = 0; trial < trials; ++trial) {
      IsraeliItaiOptions o;
      o.seed = trial + 9;
      ii.add(static_cast<double>(israeli_itai(wg.graph, o).stats.rounds));
    }
    h.row();
    h.cell(static_cast<std::size_t>(n));
    h.cell(static_cast<std::size_t>(res.stats.rounds));
    h.cell(static_cast<double>(res.stats.rounds) / n, 4);
    h.cell(ii.mean(), 5);
  }
  bench::print_table(h);
  return 0;
}
