// Experiment ABLATION — design-choice ablations called out in DESIGN.md:
//   (a) Algorithm 4: adaptive stopping vs the paper's fixed budget —
//       how many iterations actually carry augmentations;
//   (b) the class black box's base (1.5 / 2 / 4): coarser classes lose
//       more to rounding, finer classes cost more sweep rounds;
//   (c) Aug engine: iterations needed per path-length cap l;
//   (d) PIM iteration count (the classic "log N iterations suffice").
#include <memory>

#include "bench/bench_common.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/class_mwm.hpp"
#include "core/general_mcm.hpp"
#include "core/generic_mcm.hpp"
#include "core/luby_mis.hpp"
#include "seq/blossom.hpp"
#include "seq/hopcroft_karp.hpp"
#include "seq/hungarian.hpp"
#include "switch/voq.hpp"

using namespace lps;

namespace {

void ablation_adaptive_budget() {
  bench::print_header(
      "ABL.a: Algorithm 4 — iterations that matter vs the paper budget",
      "the fixed budget 2^{2k+1}(k+1) ln k is a w.h.p. worst case; "
      "adaptive stopping exits once the certified ratio is reached");
  Table t({"k", "paper budget", "iters to certified ratio (mean)",
           "iters with progress (mean)", "ratio"});
  for (const int k : {2, 3}) {
    StreamingStats used, progress, ratio;
    for (int trial = 0; trial < 3; ++trial) {
      Rng rng(900 + trial);
      const Graph g = erdos_renyi(96, 4.0 / 96, rng);
      const std::size_t opt = blossom_mcm(g).size();
      GeneralMcmOptions o;
      o.k = k;
      o.seed = trial + 1;
      o.oracle_optimum_size = opt;
      const GeneralMcmResult res = general_mcm(g, o);
      used.add(static_cast<double>(res.iterations));
      progress.add(static_cast<double>(res.paths_applied));
      ratio.add(res.matching.size() / static_cast<double>(opt));
    }
    t.row();
    t.cell(k);
    t.cell(static_cast<std::size_t>(general_mcm_paper_budget(k)));
    t.cell(used.mean(), 4);
    t.cell(progress.mean(), 4);
    t.cell(ratio.mean(), 4);
  }
  bench::print_table(t);
}

void ablation_class_base() {
  bench::print_header(
      "ABL.b: class black box — geometric base vs quality and rounds",
      "base 2 is the default; coarser classes (base 4) round away more "
      "weight, finer classes (base 1.5) add sweep rounds");
  Table t({"base", "delta measured (mean)", "rounds (mean)",
           "classes (mean)"});
  for (const double base : {1.5, 2.0, 4.0}) {
    StreamingStats delta, rounds, classes;
    for (int trial = 0; trial < 4; ++trial) {
      Rng rng(910 + trial);
      auto bg = random_bipartite(64, 64, 0.1, rng);
      auto w = uniform_weights(bg.graph.num_edges(), 1.0, 200.0, rng);
      const WeightedGraph wg =
          make_weighted(std::move(bg.graph), std::move(w));
      const auto side = wg.graph.bipartition();
      const double opt = hungarian_mwm(wg, *side).weight(wg);
      ClassMwmOptions o;
      o.seed = trial + 7;
      o.class_base = base;
      const ClassMwmResult res = class_mwm(wg, o);
      delta.add(res.matching.weight(wg) / opt);
      rounds.add(static_cast<double>(res.stats.rounds));
      classes.add(static_cast<double>(res.num_classes));
    }
    t.row();
    t.cell(base, 3);
    t.cell(delta.mean(), 4);
    t.cell(rounds.mean(), 5);
    t.cell(classes.mean(), 4);
  }
  bench::print_table(t);
}

void ablation_aug_length() {
  bench::print_header(
      "ABL.c: Aug engine — cost and benefit per path-length cap l",
      "longer caps buy approximation quality at O(l) rounds per "
      "iteration (Lemma 3.7)");
  Table t({"l", "|M| after Aug<=l", "ratio vs opt", "iterations", "rounds"});
  Rng rng(920);
  const auto bg = random_bipartite(128, 128, 0.04, rng);
  const double opt =
      static_cast<double>(hopcroft_karp(bg.graph, bg.side).size());
  for (const int l : {1, 3, 5, 7}) {
    Matching m(bg.graph.num_nodes());
    NetStats total;
    std::uint64_t iters = 0;
    for (int ll = 1; ll <= l; ll += 2) {
      AugOptions o;
      o.seed = 5 + ll;
      const AugResult res = bipartite_aug(bg.graph, bg.side, m, ll, {}, o);
      total.merge(res.stats);
      iters += res.iterations;
    }
    t.row();
    t.cell(l);
    t.cell(m.size());
    t.cell(m.size() / opt, 4);
    t.cell(static_cast<std::size_t>(iters));
    t.cell(static_cast<std::size_t>(total.rounds));
  }
  bench::print_table(t);
}

void ablation_mis_choice() {
  bench::print_header(
      "ABL.e: MIS subroutine for Algorithm 1 — Luby [20] vs "
      "Alon–Babai–Itai [1]",
      "Lemma 3.3 allows either; both are O(log N) phases w.h.p.");
  Table t({"MIS", "rounds on C_M-like graphs (mean)", "MIS maximal",
           "generic_mcm ratio (mean)"});
  for (const bool use_abi : {false, true}) {
    StreamingStats mis_rounds, ratio;
    bool all_maximal = true;
    for (int trial = 0; trial < 4; ++trial) {
      Rng rng(930 + trial);
      // Dense-ish overlap graphs stand in for conflict graphs.
      const Graph cg = erdos_renyi(400, 0.02, rng);
      MisOptions mo;
      mo.seed = trial + 1;
      const MisResult mis = use_abi ? abi_mis(cg, mo) : luby_mis(cg, mo);
      all_maximal = all_maximal && is_maximal_independent_set(cg, mis.in_mis);
      mis_rounds.add(static_cast<double>(mis.stats.rounds));

      const Graph g = erdos_renyi(64, 0.1, rng);
      const double opt = static_cast<double>(blossom_mcm(g).size());
      GenericMcmOptions go;
      go.eps = 0.5;
      go.seed = trial + 2;
      go.use_abi_mis = use_abi;
      ratio.add(generic_mcm(g, go).matching.size() / opt);
    }
    t.row();
    t.cell(use_abi ? "Alon-Babai-Itai [1]" : "Luby [20]");
    t.cell(mis_rounds.mean(), 5);
    t.cell(all_maximal ? "yes" : "NO");
    t.cell(ratio.mean(), 4);
  }
  bench::print_table(t);
}

void ablation_pim_iterations() {
  bench::print_header(
      "ABL.d: PIM iterations — throughput under high uniform load",
      "PIM converges in O(log N) iterations (Anderson et al. [3]); one "
      "iteration leaves throughput on the table");
  Table t({"iterations", "throughput", "mean delay"});
  for (const int iters : {1, 2, 4, 8}) {
    SwitchConfig cfg;
    cfg.ports = 8;
    cfg.slots = 6000;
    cfg.warmup = 600;
    cfg.load = 0.9;
    cfg.pattern = TrafficPattern::kUniform;
    cfg.seed = 3;
    PimScheduler pim(iters, 9);
    const SwitchMetrics m = run_switch(cfg, pim);
    t.row();
    t.cell(iters);
    t.cell(m.normalized_throughput, 4);
    t.cell(m.mean_delay, 4);
  }
  bench::print_table(t);
}

}  // namespace

int main() {
  ablation_adaptive_budget();
  ablation_class_base();
  ablation_aug_length();
  ablation_mis_choice();
  ablation_pim_iterations();
  return 0;
}
