// Experiment MICRO — google-benchmark microbenchmarks of the substrates
// (engineering numbers, not paper claims): exact solvers, the
// synchronous engine's per-round overhead, BigCounter arithmetic, and
// the generators.
#include <benchmark/benchmark.h>

#include "core/bipartite_counting.hpp"
#include "core/israeli_itai.hpp"
#include "core/luby_mis.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "runtime/engine.hpp"
#include "seq/blossom.hpp"
#include "seq/greedy.hpp"
#include "seq/hopcroft_karp.hpp"
#include "seq/hungarian.hpp"
#include "util/bigint.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

void BM_ErdosRenyi(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(erdos_renyi(n, 8.0 / n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ErdosRenyi)->Arg(1 << 10)->Arg(1 << 14);

void BM_HopcroftKarp(benchmark::State& state) {
  const NodeId half = static_cast<NodeId>(state.range(0));
  Rng rng(7);
  const auto bg = random_bipartite(half, half, 6.0 / half, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hopcroft_karp(bg.graph, bg.side));
  }
  state.SetItemsProcessed(state.iterations() * bg.graph.num_edges());
}
BENCHMARK(BM_HopcroftKarp)->Arg(1 << 9)->Arg(1 << 12);

void BM_Blossom(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(9);
  const Graph g = erdos_renyi(n, 6.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blossom_mcm(g));
  }
}
BENCHMARK(BM_Blossom)->Arg(1 << 7)->Arg(1 << 9);

void BM_GreedyMwm(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(11);
  Graph g = erdos_renyi(n, 8.0 / n, rng);
  auto w = uniform_weights(g.num_edges(), 1.0, 100.0, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_mwm(wg));
  }
}
BENCHMARK(BM_GreedyMwm)->Arg(1 << 10)->Arg(1 << 14);

void BM_Hungarian(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  std::vector<std::vector<double>> profit(n, std::vector<double>(n));
  for (auto& row : profit) {
    for (auto& x : row) x = rng.uniform01() * 100.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_assignment(profit));
  }
}
BENCHMARK(BM_Hungarian)->Arg(32)->Arg(128);

void BM_EngineRound(benchmark::State& state) {
  // Per-round overhead of the synchronous engine with light traffic.
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(15);
  const Graph g = erdos_renyi(n, 4.0 / n, rng);
  struct Msg {
    std::uint32_t x;
  };
  SyncNetwork<Msg> net(g, 1);
  auto step = [&](SyncNetwork<Msg>::Ctx& ctx) {
    if ((ctx.id() & 7u) == 0) {
      for (const auto& inc : ctx.graph().neighbors(ctx.id())) {
        ctx.send(inc.edge, Msg{ctx.id()});
        break;
      }
    }
  };
  for (auto _ : state) {
    net.run_round(step);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRound)->Arg(1 << 10)->Arg(1 << 14);

void BM_IsraeliItai(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(17);
  const Graph g = erdos_renyi(n, 6.0 / n, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    IsraeliItaiOptions opts;
    opts.seed = seed++;
    benchmark::DoNotOptimize(israeli_itai(g, opts));
  }
}
BENCHMARK(BM_IsraeliItai)->Arg(1 << 10)->Arg(1 << 12);

void BM_LubyMis(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(19);
  const Graph g = erdos_renyi(n, 8.0 / n, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    MisOptions opts;
    opts.seed = seed++;
    benchmark::DoNotOptimize(luby_mis(g, opts));
  }
}
BENCHMARK(BM_LubyMis)->Arg(1 << 10)->Arg(1 << 12);

void BM_BipartiteCounting(benchmark::State& state) {
  const NodeId half = static_cast<NodeId>(state.range(0));
  Rng rng(21);
  const auto bg = random_bipartite(half, half, 6.0 / half, rng);
  const Matching m = greedy_mcm(bg.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        count_augmenting_paths(bg.graph, bg.side, m, 7, {}));
  }
}
BENCHMARK(BM_BipartiteCounting)->Arg(1 << 9)->Arg(1 << 11);

void BM_BigCounterAdd(benchmark::State& state) {
  Rng rng(23);
  BigCounter a(rng()), b(rng());
  for (int i = 0; i < state.range(0); ++i) {
    a.shift_left(31);
    a += BigCounter(rng());
    b.shift_left(31);
    b += BigCounter(rng());
  }
  for (auto _ : state) {
    BigCounter c = a;
    c += b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BigCounterAdd)->Arg(4)->Arg(64);

void BM_BigCounterSampleBelow(benchmark::State& state) {
  Rng rng(29);
  BigCounter bound(1);
  for (int i = 0; i < state.range(0); ++i) {
    bound.shift_left(31);
    bound += BigCounter(rng() | 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigCounter::sample_below(bound, rng));
  }
}
BENCHMARK(BM_BigCounterSampleBelow)->Arg(4)->Arg(64);

}  // namespace
}  // namespace lps

BENCHMARK_MAIN();
