// Experiment MICRO — google-benchmark microbenchmarks of the substrates
// (engineering numbers, not paper claims): exact solvers, the
// synchronous engine's per-round overhead, BigCounter arithmetic, and
// the generators.
//
// Extra modes (custom main):
//   --engine-json[=PATH]  run the engine round-throughput sweep (4 sizes
//                         x 2 densities + one n=2^24 run, fixed seeds)
//                         and write PATH (default BENCH_engine.json, for
//                         committing to the repo root so future PRs can
//                         diff). Also measures tracing overhead at
//                         n=2^20 deg 4 into a "telemetry_overhead"
//                         block. Top-level keys containing "baseline" in
//                         an existing PATH are preserved verbatim.
//   --shards=K            force K engine shards for the sweep modes
//                         (0 = auto-size to the detected L2; default).
//   --shard-sweep         n=2^20 avg_deg=4, shard counts 1..128 and
//                         auto: the locality curve behind DESIGN.md §11.
//   --perf-gate[=PATH]    re-run the small/mid sweep rows and compare
//                         rounds/sec against the checked-in PATH
//                         (default BENCH_engine.json); exit 1 on a >20%
//                         regression, printing each regressed row's
//                         per-phase telemetry breakdown. Set
//                         LPS_BENCH_GATE_SKIP=1 to record-but-ignore
//                         (documented override for noisy CI hosts).
//   --smoke               tiny sweep + engine sanity asserts, exit 0/1;
//                         the CI bench smoke job runs this in Release.
//   --trace=PATH          record a Chrome/Perfetto trace of whichever
//                         sweep mode runs and write it to PATH.
//   --trace-overhead[=E]  tracing-overhead gate: best-of-3 rounds/sec at
//                         n=2^E (default 20) deg 4, untraced vs fully
//                         traced; exit 1 when the traced run is >5%
//                         slower (LPS_BENCH_GATE_SKIP honored).
//   --obs-overhead[=E]    observability-overhead gate: same harness, but
//                         the instrumented side runs with the structured
//                         EventLog recording and a silent Monitor
//                         sampling progress; exit 1 when >5% slower
//                         (LPS_BENCH_GATE_SKIP honored).
//
// Every sweep row (including --smoke) also appends a "bench" record to
// the run ledger (bench/ledger.jsonl; LPS_LEDGER overrides/disables) so
// tools/perf_diff can trend rounds/sec across invocations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_common.hpp"
#include "core/bipartite_counting.hpp"
#include "core/israeli_itai.hpp"
#include "core/luby_mis.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "runtime/engine.hpp"
#include "runtime/shard.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/telemetry.hpp"
#include "seq/blossom.hpp"
#include "seq/greedy.hpp"
#include "seq/hopcroft_karp.hpp"
#include "seq/hungarian.hpp"
#include "util/bigint.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

void BM_ErdosRenyi(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(erdos_renyi(n, 8.0 / n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ErdosRenyi)->Arg(1 << 10)->Arg(1 << 14);

void BM_HopcroftKarp(benchmark::State& state) {
  const NodeId half = static_cast<NodeId>(state.range(0));
  Rng rng(7);
  const auto bg = random_bipartite(half, half, 6.0 / half, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hopcroft_karp(bg.graph, bg.side));
  }
  state.SetItemsProcessed(state.iterations() * bg.graph.num_edges());
}
BENCHMARK(BM_HopcroftKarp)->Arg(1 << 9)->Arg(1 << 12);

void BM_Blossom(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(9);
  const Graph g = erdos_renyi(n, 6.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blossom_mcm(g));
  }
}
BENCHMARK(BM_Blossom)->Arg(1 << 7)->Arg(1 << 9);

void BM_GreedyMwm(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(11);
  Graph g = erdos_renyi(n, 8.0 / n, rng);
  auto w = uniform_weights(g.num_edges(), 1.0, 100.0, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_mwm(wg));
  }
}
BENCHMARK(BM_GreedyMwm)->Arg(1 << 10)->Arg(1 << 14);

void BM_Hungarian(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  std::vector<std::vector<double>> profit(n, std::vector<double>(n));
  for (auto& row : profit) {
    for (auto& x : row) x = rng.uniform01() * 100.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_assignment(profit));
  }
}
BENCHMARK(BM_Hungarian)->Arg(32)->Arg(128);

// Light-traffic round workload shared by BM_EngineRound, --engine-json
// and --smoke: every 8th node sends one message on its first edge and
// keeps itself active; everyone else only wakes when a message arrives.
// Under active-set scheduling the per-round cost tracks those ~n/4
// touched nodes, not n + m.
struct EngineMsg {
  std::uint32_t x;
};
using EngineNet = SyncNetwork<EngineMsg, DefaultBitMeter<EngineMsg>>;

struct EngineStep {
  void operator()(EngineNet::Ctx& ctx) const {
    if ((ctx.id() & 7u) == 0) {
      ctx.keep_active();
      for (const auto& inc : ctx.graph().neighbors(ctx.id())) {
        ctx.send(inc.edge, EngineMsg{ctx.id()});
        break;
      }
    }
  }
};

void BM_EngineRound(benchmark::State& state) {
  // Per-round overhead of the synchronous engine with light traffic.
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(15);
  const Graph g = erdos_renyi(n, 4.0 / n, rng);
  EngineNet net(g, 1, {});
  for (auto _ : state) {
    net.run_round(EngineStep{});
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRound)->Arg(1 << 10)->Arg(1 << 14);

void BM_IsraeliItai(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(17);
  const Graph g = erdos_renyi(n, 6.0 / n, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    IsraeliItaiOptions opts;
    opts.seed = seed++;
    benchmark::DoNotOptimize(israeli_itai(g, opts));
  }
}
BENCHMARK(BM_IsraeliItai)->Arg(1 << 10)->Arg(1 << 12);

void BM_LubyMis(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(19);
  const Graph g = erdos_renyi(n, 8.0 / n, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    MisOptions opts;
    opts.seed = seed++;
    benchmark::DoNotOptimize(luby_mis(g, opts));
  }
}
BENCHMARK(BM_LubyMis)->Arg(1 << 10)->Arg(1 << 12);

void BM_BipartiteCounting(benchmark::State& state) {
  const NodeId half = static_cast<NodeId>(state.range(0));
  Rng rng(21);
  const auto bg = random_bipartite(half, half, 6.0 / half, rng);
  const Matching m = greedy_mcm(bg.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        count_augmenting_paths(bg.graph, bg.side, m, 7, {}));
  }
}
BENCHMARK(BM_BipartiteCounting)->Arg(1 << 9)->Arg(1 << 11);

void BM_BigCounterAdd(benchmark::State& state) {
  Rng rng(23);
  BigCounter a(rng()), b(rng());
  for (int i = 0; i < state.range(0); ++i) {
    a.shift_left(31);
    a += BigCounter(rng());
    b.shift_left(31);
    b += BigCounter(rng());
  }
  for (auto _ : state) {
    BigCounter c = a;
    c += b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BigCounterAdd)->Arg(4)->Arg(64);

void BM_BigCounterSampleBelow(benchmark::State& state) {
  Rng rng(29);
  BigCounter bound(1);
  for (int i = 0; i < state.range(0); ++i) {
    bound.shift_left(31);
    bound += BigCounter(rng() | 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigCounter::sample_below(bound, rng));
  }
}
BENCHMARK(BM_BigCounterSampleBelow)->Arg(4)->Arg(64);

// ------------------------- engine round-throughput sweep (BENCH_engine) --

struct EngineRunResult {
  NodeId n;
  double avg_deg;
  EdgeId m;
  unsigned shards;  // shard count the engine actually used
  std::uint64_t rounds;
  std::uint64_t messages;
  double elapsed;

  double rounds_per_sec() const { return rounds / elapsed; }
  double messages_per_sec() const { return messages / elapsed; }
  double ns_per_message() const { return 1e9 * elapsed / messages; }
};

/// Time the EngineStep workload on erdos_renyi(n, avg_deg/n, seed 15):
/// 3 warmup rounds, then rounds until min_seconds elapse (>= 10 rounds).
EngineRunResult measure_engine_rounds(NodeId n, double avg_deg,
                                      double min_seconds,
                                      unsigned shards_req) {
  Rng rng(15);
  const Graph g = erdos_renyi(n, avg_deg / n, rng);
  EngineNet net(g, 1, {});
  net.set_shards(shards_req);
  for (int r = 0; r < 3; ++r) net.run_round(EngineStep{});
  const std::uint64_t msgs0 = net.stats().messages;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t rounds = 0;
  double elapsed = 0.0;
  while (elapsed < min_seconds || rounds < 10) {
    net.run_round(EngineStep{});
    ++rounds;
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return {n,      avg_deg,       g.num_edges(), net.shards(),
          rounds, net.stats().messages - msgs0, elapsed};
}

void print_engine_row(const EngineRunResult& r) {
  std::printf(
      "engine n=%-8u avg_deg=%-4.0f m=%-9u shards=%-4u rounds/s=%-10.1f "
      "msgs/s=%-12.0f ns/msg=%.1f\n",
      r.n, r.avg_deg, r.m, r.shards, r.rounds_per_sec(),
      r.messages_per_sec(), r.ns_per_message());
}

// ------------------------------------------- tracing-overhead probe --

struct TraceOverheadResult {
  EngineRunResult off;   // telemetry switched off
  EngineRunResult on;    // metrics + span recording on
  std::size_t events = 0;  // spans captured during the best traced repeat

  double overhead_frac() const {
    return 1.0 - on.rounds_per_sec() / off.rounds_per_sec();
  }
};

/// Best-of-`reps` untraced vs fully traced (metrics on + span recording
/// on) runs of the EngineStep workload. Best-of on both sides: peak
/// throughput is the noise-stable quantity, and comparing peaks isolates
/// the instrumentation cost from scheduler jitter.
TraceOverheadResult measure_trace_overhead(NodeId n, double avg_deg,
                                           double min_seconds, int reps) {
  TraceOverheadResult out{};
  for (int rep = 0; rep < reps; ++rep) {
    const EngineRunResult r =
        measure_engine_rounds(n, avg_deg, min_seconds, /*shards=*/0);
    if (rep == 0 || r.rounds_per_sec() > out.off.rounds_per_sec()) {
      out.off = r;
    }
  }
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  const bool prev = telemetry::enabled();
  telemetry::set_enabled(true);
  for (int rep = 0; rep < reps; ++rep) {
    tracer.reset();  // fresh event budget per repeat — no drop skew
    tracer.set_recording(true);
    const EngineRunResult r =
        measure_engine_rounds(n, avg_deg, min_seconds, /*shards=*/0);
    tracer.set_recording(false);
    if (rep == 0 || r.rounds_per_sec() > out.on.rounds_per_sec()) {
      out.on = r;
      out.events = tracer.events();
    }
  }
  telemetry::set_enabled(prev);
  tracer.reset();
  return out;
}

/// Re-measure one gate row with metrics on and print where the round
/// time goes — the first clue when a gate row regresses. Per-round
/// means from EngineMetrics deltas; p2/sort/shard sums are totals
/// across shards, matching the runner's telemetry block.
void print_phase_breakdown(NodeId n, double avg_deg) {
  const bool prev = telemetry::enabled();
  telemetry::set_enabled(true);
  if (!telemetry::enabled()) {
    std::printf("  (telemetry compiled out — no phase breakdown)\n");
    return;
  }
  telemetry::EngineMetrics& em = telemetry::EngineMetrics::get();
  const std::uint64_t rounds0 = em.rounds.value();
  telemetry::HistogramSnapshot round = em.round_ns.snapshot();
  telemetry::HistogramSnapshot p1 = em.exchange_p1_ns.snapshot();
  telemetry::HistogramSnapshot p2 = em.exchange_p2_ns.snapshot();
  telemetry::HistogramSnapshot sort = em.inbox_sort_ns.snapshot();
  telemetry::HistogramSnapshot deliver = em.deliver_ns.snapshot();
  telemetry::HistogramSnapshot step = em.step_ns.snapshot();
  measure_engine_rounds(n, avg_deg, /*min_seconds=*/0.2, /*shards=*/0);
  const std::uint64_t rounds = em.rounds.value() - rounds0;
  telemetry::set_enabled(prev);
  if (rounds == 0) return;
  const auto per_round = [rounds](telemetry::Histogram& h,
                                  const telemetry::HistogramSnapshot& before) {
    telemetry::HistogramSnapshot s = h.snapshot();
    s -= before;
    return static_cast<double>(s.sum) / static_cast<double>(rounds);
  };
  std::printf(
      "  phase/round: exchange_p1=%.0fns exchange_p2=%.0fns "
      "inbox_sort=%.0fns deliver=%.0fns step=%.0fns round=%.0fns\n",
      per_round(em.exchange_p1_ns, p1), per_round(em.exchange_p2_ns, p2),
      per_round(em.inbox_sort_ns, sort), per_round(em.deliver_ns, deliver),
      per_round(em.step_ns, step), per_round(em.round_ns, round));
}

/// Top-level `"key": value` blocks of `text` whose key contains
/// "baseline", returned verbatim (value brace/bracket-matched). This is
/// what keeps hand-annotated baseline blocks alive across --engine-json
/// regenerations.
std::vector<std::pair<std::string, std::string>> baseline_blocks(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  int depth = 0;
  bool in_string = false;
  std::string key;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      } else {
        key += c;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      key.clear();
      continue;
    }
    if (c == '{' || c == '[') {
      ++depth;
      continue;
    }
    if (c == '}' || c == ']') {
      --depth;
      continue;
    }
    if (c == ':' && depth == 1 && key.find("baseline") != std::string::npos) {
      // Capture the value: skip whitespace, then match braces/brackets
      // (baseline values are objects; scalars end at , or }).
      std::size_t j = i + 1;
      while (j < text.size() && (text[j] == ' ' || text[j] == '\n')) ++j;
      std::size_t start = j;
      int vdepth = 0;
      bool vstring = false;
      for (; j < text.size(); ++j) {
        const char vc = text[j];
        if (vstring) {
          if (vc == '\\') {
            ++j;
          } else if (vc == '"') {
            vstring = false;
          }
          continue;
        }
        if (vc == '"') {
          vstring = true;
        } else if (vc == '{' || vc == '[') {
          ++vdepth;
        } else if (vc == '}' || vc == ']') {
          if (vdepth == 0) break;  // enclosing object closed (scalar value)
          --vdepth;
          if (vdepth == 0) {
            ++j;
            break;
          }
        } else if ((vc == ',') && vdepth == 0) {
          break;
        }
      }
      out.emplace_back(key, text.substr(start, j - start));
      i = j - 1;
    }
  }
  return out;
}

/// Best-effort numeric field extraction from one flat JSON object row.
bool json_field(const std::string& row, const char* name, double* value) {
  const std::string needle = std::string("\"") + name + "\":";
  const std::size_t pos = row.find(needle);
  if (pos == std::string::npos) return false;
  *value = std::strtod(row.c_str() + pos + needle.size(), nullptr);
  return true;
}

/// The rows of the top-level "results" array, one string per object.
std::vector<std::string> result_rows(const std::string& text) {
  std::vector<std::string> rows;
  const std::size_t arr = text.find("\"results\":");
  if (arr == std::string::npos) return rows;
  std::size_t i = text.find('[', arr);
  if (i == std::string::npos) return rows;
  for (++i; i < text.size() && text[i] != ']'; ++i) {
    if (text[i] != '{') continue;
    const std::size_t end = text.find('}', i);
    if (end == std::string::npos) break;
    rows.push_back(text.substr(i, end - i + 1));
    i = end;
  }
  return rows;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int run_engine_sweep(const std::string& json_path, bool smoke,
                     unsigned shards_req) {
  const double min_seconds = smoke ? 0.02 : 0.5;
  std::vector<std::pair<NodeId, double>> configs;
  if (smoke) {
    configs = {{1u << 10, 4.0}, {1u << 12, 16.0}};
  } else {
    configs = {{1u << 14, 4.0},  {1u << 14, 16.0}, {1u << 17, 4.0},
               {1u << 17, 16.0}, {1u << 20, 4.0},  {1u << 20, 16.0},
               {1u << 24, 4.0}};
  }
  std::vector<EngineRunResult> results;
  for (const auto& [n, avg_deg] : configs) {
    EngineRunResult r = measure_engine_rounds(n, avg_deg, min_seconds,
                                              shards_req);
    if (r.messages == 0 || r.rounds == 0) {
      std::fprintf(stderr, "engine sweep: no traffic at n=%u\n", n);
      return 1;
    }
    print_engine_row(r);
    // Ledger row keyed to join against the BENCH_engine.json baseline.
    bench::ledger_append(
        "engine:n=" + std::to_string(r.n) + ",deg=" +
            std::to_string(static_cast<unsigned>(r.avg_deg)),
        "rounds_per_sec", r.rounds_per_sec(), /*higher_is_better=*/true);
    results.push_back(r);
  }
  if (json_path.empty()) return 0;
  // The telemetry acceptance number rides along with every full
  // regeneration: traced vs untraced throughput at the flagship
  // n=2^20 deg 4 row (ISSUE 7 budget: <= 5% rounds/sec).
  TraceOverheadResult overhead{};
  if (!smoke && telemetry::Tracer::global().recording()) {
    // The probe's "untraced" half would record into the outer --trace
    // (and its reset() would erase it) — skip under an active trace.
    std::printf("tracing overhead probe skipped (outer --trace active)\n");
  } else if (!smoke) {
    overhead = measure_trace_overhead(1u << 20, 4.0, min_seconds, 3);
    std::printf("untraced ");
    print_engine_row(overhead.off);
    std::printf("traced   ");
    print_engine_row(overhead.on);
    std::printf("tracing overhead: %.2f%% rounds/sec (%zu events)\n",
                100.0 * overhead.overhead_frac(), overhead.events);
  }
  // Preserve hand-annotated baseline blocks from the previous file: a
  // regeneration must not erase the history the perf gate and the PR
  // notes diff against.
  const std::vector<std::pair<std::string, std::string>> keep =
      baseline_blocks(read_file(json_path));
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  const CacheInfo& cache = detect_cache();
  out << "{\n"
      << "  \"schema\": \"lps-bench-engine-v2\",\n"
      << "  \"harness\": \"erdos_renyi(n, avg_deg/n, seed 15); every 8th "
         "node keep-active-sends 1 msg on its first edge per round; 3 "
         "warmup rounds then >=0.5s timed\",\n"
      << "  \"generated_by\": \"bench_micro --engine-json\",\n"
      << "  \"cache\": {\"l2_bytes\": " << cache.l2_bytes
      << ", \"l3_bytes\": " << cache.l3_bytes << "},\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const EngineRunResult& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"n\": %u, \"avg_deg\": %.0f, \"m\": %u, "
                  "\"shards\": %u, \"rounds\": %llu, "
                  "\"rounds_per_sec\": %.1f, \"messages_per_sec\": %.0f, "
                  "\"ns_per_delivered_message\": %.1f}%s\n",
                  r.n, r.avg_deg, r.m, r.shards,
                  static_cast<unsigned long long>(r.rounds),
                  r.rounds_per_sec(), r.messages_per_sec(),
                  r.ns_per_message(), i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]";
  if (!smoke && overhead.off.rounds > 0) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        ",\n  \"telemetry_overhead\": {\"n\": %u, \"avg_deg\": %.0f, "
        "\"untraced_rounds_per_sec\": %.1f, \"traced_rounds_per_sec\": %.1f, "
        "\"untraced_ns_per_msg\": %.1f, \"traced_ns_per_msg\": %.1f, "
        "\"overhead_frac\": %.4f, \"trace_events\": %zu}",
        overhead.off.n, overhead.off.avg_deg, overhead.off.rounds_per_sec(),
        overhead.on.rounds_per_sec(), overhead.off.ns_per_message(),
        overhead.on.ns_per_message(), overhead.overhead_frac(),
        overhead.events);
    out << buf;
  }
  for (const auto& [key, value] : keep) {
    out << ",\n  \"" << key << "\": " << value;
  }
  out << "\n}\n";
  std::printf("wrote %s (%zu baseline block%s preserved)\n",
              json_path.c_str(), keep.size(), keep.size() == 1 ? "" : "s");
  return 0;
}

int run_shard_sweep() {
  // The locality curve: one size, one density, shard count swept. Auto
  // (0) last so the chosen count is visible against the forced points.
  const NodeId n = 1u << 20;
  for (unsigned s : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 0u}) {
    EngineRunResult r = measure_engine_rounds(n, 4.0, 0.5, s);
    std::printf("%s", s == 0 ? "(auto) " : "       ");
    print_engine_row(r);
  }
  return 0;
}

/// CI perf-regression gate: re-measure the sweep rows with n <= 2^17
/// (the big rows are too slow for CI) and fail when rounds/sec drops
/// more than 20% below the checked-in baseline file. Each row takes
/// the best of three repeats — peak throughput is the stable quantity
/// under scheduler noise; a real regression lowers all three. The
/// documented override for noisy hosts: LPS_BENCH_GATE_SKIP=1 reports
/// but exits 0.
int run_perf_gate(const std::string& baseline_path) {
  const std::string text = read_file(baseline_path);
  if (text.empty()) {
    std::fprintf(stderr, "perf gate: cannot read %s\n",
                 baseline_path.c_str());
    return 1;
  }
  const std::vector<std::string> rows = result_rows(text);
  if (rows.empty()) {
    std::fprintf(stderr, "perf gate: no results in %s\n",
                 baseline_path.c_str());
    return 1;
  }
  bool failed = false;
  std::size_t compared = 0;
  for (const std::string& row : rows) {
    double bn = 0.0, bdeg = 0.0, brps = 0.0;
    if (!json_field(row, "n", &bn) || !json_field(row, "avg_deg", &bdeg) ||
        !json_field(row, "rounds_per_sec", &brps) || brps <= 0.0) {
      continue;
    }
    if (bn > static_cast<double>(1u << 17)) continue;  // CI time budget
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const EngineRunResult r = measure_engine_rounds(
          static_cast<NodeId>(bn), bdeg, /*min_seconds=*/0.2, /*shards=*/0);
      best = std::max(best, r.rounds_per_sec());
    }
    ++compared;
    const double ratio = best / brps;
    std::printf(
        "perf gate n=%-8.0f avg_deg=%-4.0f baseline=%-10.1f now=%-10.1f "
        "ratio=%.2f%s\n",
        bn, bdeg, brps, best, ratio,
        ratio < 0.8 ? "  << REGRESSION" : "");
    if (ratio < 0.8) {
      failed = true;
      print_phase_breakdown(static_cast<NodeId>(bn), bdeg);
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "perf gate: no comparable rows in %s\n",
                 baseline_path.c_str());
    return 1;
  }
  if (failed) {
    const char* skip = std::getenv("LPS_BENCH_GATE_SKIP");
    if (skip != nullptr && skip[0] == '1') {
      std::printf(
          "perf gate: regression detected but LPS_BENCH_GATE_SKIP=1 — "
          "ignoring\n");
      return 0;
    }
    std::fprintf(stderr,
                 "perf gate: rounds/sec regressed >20%% vs %s (set "
                 "LPS_BENCH_GATE_SKIP=1 to override on noisy hosts)\n",
                 baseline_path.c_str());
    return 1;
  }
  std::printf("perf gate: OK (%zu rows within 20%% of %s)\n", compared,
              baseline_path.c_str());
  return 0;
}

/// CI tracing-overhead gate (--trace-overhead): the telemetry contract
/// says a fully traced engine run (metrics + span recording on) stays
/// within 5% of untraced rounds/sec. Same best-of-3 discipline and
/// LPS_BENCH_GATE_SKIP override as the perf gate.
int run_trace_overhead(unsigned nexp) {
  telemetry::set_enabled(true);
  if (!telemetry::enabled()) {
    std::printf(
        "trace overhead: telemetry compiled out (LPS_TELEMETRY=0) — "
        "nothing to gate\n");
    return 0;
  }
  telemetry::set_enabled(false);
  const NodeId n = NodeId{1} << nexp;
  const TraceOverheadResult r = measure_trace_overhead(n, 4.0, 0.3, 3);
  std::printf("untraced ");
  print_engine_row(r.off);
  std::printf("traced   ");
  print_engine_row(r.on);
  const double frac = r.overhead_frac();
  std::printf(
      "trace overhead: %.2f%% rounds/sec (%zu events captured, budget "
      "5%%)\n",
      100.0 * frac, r.events);
  if (frac > 0.05) {
    const char* skip = std::getenv("LPS_BENCH_GATE_SKIP");
    if (skip != nullptr && skip[0] == '1') {
      std::printf(
          "trace overhead: over budget but LPS_BENCH_GATE_SKIP=1 — "
          "ignoring\n");
      return 0;
    }
    std::fprintf(stderr,
                 "trace overhead: traced run >5%% slower than untraced (set "
                 "LPS_BENCH_GATE_SKIP=1 to override on noisy hosts)\n");
    return 1;
  }
  return 0;
}

/// CI observability-overhead gate (--obs-overhead): the PR 9 acceptance
/// budget — a run with the structured EventLog recording and a silent
/// Monitor sampling the progress board stays within 5% of bare
/// rounds/sec. Same best-of-3 discipline and LPS_BENCH_GATE_SKIP
/// override as the other gates.
int run_obs_overhead(unsigned nexp) {
  telemetry::EventLog& elog = telemetry::EventLog::global();
  elog.set_recording(true);
  if (!elog.recording()) {
    std::printf(
        "obs overhead: telemetry compiled out (LPS_TELEMETRY=0) — "
        "nothing to gate\n");
    return 0;
  }
  elog.set_recording(false);
  const NodeId n = NodeId{1} << nexp;
  EngineRunResult off{};
  EngineRunResult on{};
  std::size_t events = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const EngineRunResult r =
        measure_engine_rounds(n, 4.0, /*min_seconds=*/0.3, /*shards=*/0);
    if (rep == 0 || r.rounds_per_sec() > off.rounds_per_sec()) off = r;
  }
  for (int rep = 0; rep < 3; ++rep) {
    elog.reset();  // fresh event budget per repeat — no drop skew
    elog.set_recording(true);
    telemetry::MonitorOptions mo;
    mo.interval_ms = 50;
    mo.out = nullptr;  // silent: sample the board, print nothing
    {
      telemetry::Monitor monitor(mo);
      const EngineRunResult r =
          measure_engine_rounds(n, 4.0, /*min_seconds=*/0.3, /*shards=*/0);
      monitor.stop();
      if (rep == 0 || r.rounds_per_sec() > on.rounds_per_sec()) {
        on = r;
        events = elog.events();
      }
    }
    elog.set_recording(false);
  }
  elog.reset();
  std::printf("bare     ");
  print_engine_row(off);
  std::printf("observed ");
  print_engine_row(on);
  const double frac = 1.0 - on.rounds_per_sec() / off.rounds_per_sec();
  std::printf(
      "obs overhead: %.2f%% rounds/sec (%zu events recorded, budget 5%%)\n",
      100.0 * frac, events);
  if (frac > 0.05) {
    const char* skip = std::getenv("LPS_BENCH_GATE_SKIP");
    if (skip != nullptr && skip[0] == '1') {
      std::printf(
          "obs overhead: over budget but LPS_BENCH_GATE_SKIP=1 — "
          "ignoring\n");
      return 0;
    }
    std::fprintf(stderr,
                 "obs overhead: event-log + monitor run >5%% slower than "
                 "bare (set LPS_BENCH_GATE_SKIP=1 to override on noisy "
                 "hosts)\n");
    return 1;
  }
  return 0;
}

/// Cheap invariant checks for the CI smoke job: crash/assert here means
/// the engine or a migrated protocol regressed in Release mode.
int run_smoke_checks() {
  // Active-set and step-everything executions must be bit-identical.
  Rng rng(77);
  const Graph g = erdos_renyi(1u << 10, 6.0 / (1u << 10), rng);
  IsraeliItaiOptions a;
  a.seed = 9;
  IsraeliItaiOptions b = a;
  b.step_all_nodes = true;
  const auto ra = israeli_itai(g, a);
  const auto rb = israeli_itai(g, b);
  if (ra.matching.size() != rb.matching.size() ||
      ra.stats.messages != rb.stats.messages ||
      ra.stats.total_bits != rb.stats.total_bits ||
      ra.stats.rounds != rb.stats.rounds) {
    std::fprintf(stderr, "smoke: active-set != step_all on israeli_itai\n");
    return 1;
  }
  // Double-send on one channel must still throw.
  const Graph p = path_graph(2);
  EngineNet net(p, 1, {});
  bool threw = false;
  try {
    net.run_round([&](EngineNet::Ctx& ctx) {
      if (ctx.id() == 0) {
        ctx.send(0, EngineMsg{1});
        ctx.send(0, EngineMsg{2});
      }
    });
  } catch (const std::logic_error&) {
    threw = true;
  }
  if (!threw) {
    std::fprintf(stderr, "smoke: double-send did not throw\n");
    return 1;
  }
  return 0;
}

}  // namespace lps

int main(int argc, char** argv) {
  bool smoke = false;
  std::string engine_json;
  bool engine_sweep = false;
  bool shard_sweep = false;
  bool perf_gate = false;
  std::string gate_path = "BENCH_engine.json";
  unsigned shards = 0;
  std::string trace_path;
  bool trace_overhead = false;
  unsigned trace_overhead_exp = 20;
  bool obs_overhead = false;
  unsigned obs_overhead_exp = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--engine-json") == 0) {
      engine_sweep = true;
      engine_json = "BENCH_engine.json";
    } else if (std::strncmp(argv[i], "--engine-json=", 14) == 0) {
      engine_sweep = true;
      engine_json = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<unsigned>(std::strtoul(argv[i] + 9, nullptr, 10));
    } else if (std::strcmp(argv[i], "--shard-sweep") == 0) {
      shard_sweep = true;
    } else if (std::strcmp(argv[i], "--perf-gate") == 0) {
      perf_gate = true;
    } else if (std::strncmp(argv[i], "--perf-gate=", 12) == 0) {
      perf_gate = true;
      gate_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--trace-overhead") == 0) {
      trace_overhead = true;
    } else if (std::strncmp(argv[i], "--trace-overhead=", 17) == 0) {
      trace_overhead = true;
      trace_overhead_exp =
          static_cast<unsigned>(std::strtoul(argv[i] + 17, nullptr, 10));
    } else if (std::strcmp(argv[i], "--obs-overhead") == 0) {
      obs_overhead = true;
    } else if (std::strncmp(argv[i], "--obs-overhead=", 15) == 0) {
      obs_overhead = true;
      obs_overhead_exp =
          static_cast<unsigned>(std::strtoul(argv[i] + 15, nullptr, 10));
    }
  }
  if (trace_overhead) {
    // Manages its own tracer state; --trace would skew the measurement.
    return lps::run_trace_overhead(trace_overhead_exp);
  }
  if (obs_overhead) {
    // Likewise self-managed: the bare half must run uninstrumented.
    return lps::run_obs_overhead(obs_overhead_exp);
  }
  const bool custom = smoke || perf_gate || shard_sweep || engine_sweep;
  const bool tracing = !trace_path.empty();
  if (tracing && !custom) {
    std::fprintf(stderr,
                 "bench_micro: --trace needs a sweep mode (--smoke, "
                 "--engine-json, --shard-sweep or --perf-gate)\n");
    return 2;
  }
  lps::telemetry::Tracer& tracer = lps::telemetry::Tracer::global();
  if (tracing) {
    lps::telemetry::set_enabled(true);
    tracer.reset();
    tracer.set_recording(true);
  }
  int rc = 0;
  if (smoke) {
    rc = lps::run_smoke_checks();
    if (rc == 0) rc = lps::run_engine_sweep("", /*smoke=*/true, shards);
    if (rc == 0) std::printf("bench_micro --smoke: OK\n");
  } else if (perf_gate) {
    rc = lps::run_perf_gate(gate_path);
  } else if (shard_sweep) {
    rc = lps::run_shard_sweep();
  } else if (engine_sweep) {
    rc = lps::run_engine_sweep(engine_json, /*smoke=*/false, shards);
  } else {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  if (tracing) {
    tracer.set_recording(false);
    lps::telemetry::set_enabled(false);
    if (tracer.write_chrome_trace(trace_path)) {
      std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                  tracer.events());
    } else {
      std::fprintf(stderr, "bench_micro: cannot write trace to %s\n",
                   trace_path.c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
