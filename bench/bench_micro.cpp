// Experiment MICRO — google-benchmark microbenchmarks of the substrates
// (engineering numbers, not paper claims): exact solvers, the
// synchronous engine's per-round overhead, BigCounter arithmetic, and
// the generators.
//
// Extra modes (custom main):
//   --engine-json[=PATH]  run the engine round-throughput sweep (4 sizes
//                         x 2 densities + one n=2^24 run, fixed seeds)
//                         and write PATH (default BENCH_engine.json, for
//                         committing to the repo root so future PRs can
//                         diff). Also measures tracing overhead at
//                         n=2^20 deg 4 into a "telemetry_overhead"
//                         block. Top-level keys containing "baseline" in
//                         an existing PATH are preserved verbatim.
//   --shards=K            force K engine shards for the sweep modes
//                         (0 = auto-size to the detected L2; default).
//   --shard-sweep         n=2^20 avg_deg=4, shard counts 1..128 and
//                         auto: the locality curve behind DESIGN.md §11.
//   --perf-gate[=PATH]    re-run the small/mid sweep rows and compare
//                         rounds/sec against the checked-in PATH
//                         (default BENCH_engine.json); exit 1 on a >20%
//                         regression, printing each regressed row's
//                         per-phase telemetry breakdown. Set
//                         LPS_BENCH_GATE_SKIP=1 to record-but-ignore
//                         (documented override for noisy CI hosts).
//   --smoke               tiny sweep + engine sanity asserts, exit 0/1;
//                         the CI bench smoke job runs this in Release.
//   --trace=PATH          record a Chrome/Perfetto trace of whichever
//                         sweep mode runs and write it to PATH.
//   --trace-overhead[=E]  tracing-overhead gate: best-of-3 rounds/sec at
//                         n=2^E (default 20) deg 4, untraced vs fully
//                         traced; exit 1 when the traced run is >5%
//                         slower (LPS_BENCH_GATE_SKIP honored).
//   --obs-overhead[=E]    observability-overhead gate: same harness, but
//                         the instrumented side runs with the structured
//                         EventLog recording and a silent Monitor
//                         sampling progress; exit 1 when >5% slower
//                         (LPS_BENCH_GATE_SKIP honored).
//
// Every sweep row (including --smoke) also appends two "bench" records
// to the run ledger (bench/ledger.jsonl; LPS_LEDGER overrides/disables)
// — rounds_per_sec and ns_per_msg, the schema-v3 metric pair — so
// tools/perf_diff can trend both across invocations.
//
// The sweep/gate implementations live in bench/engine_sweep.cpp: the
// engine hot loops measured there need a small TU for clean codegen
// (see engine_sweep.hpp), so this TU holds only the BM_* suite and the
// CLI dispatch.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/engine_sweep.hpp"
#include "core/bipartite_counting.hpp"
#include "core/israeli_itai.hpp"
#include "core/luby_mis.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "telemetry/telemetry.hpp"
#include "seq/blossom.hpp"
#include "seq/greedy.hpp"
#include "seq/hopcroft_karp.hpp"
#include "seq/hungarian.hpp"
#include "util/bigint.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

void BM_ErdosRenyi(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(erdos_renyi(n, 8.0 / n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ErdosRenyi)->Arg(1 << 10)->Arg(1 << 14);

void BM_HopcroftKarp(benchmark::State& state) {
  const NodeId half = static_cast<NodeId>(state.range(0));
  Rng rng(7);
  const auto bg = random_bipartite(half, half, 6.0 / half, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hopcroft_karp(bg.graph, bg.side));
  }
  state.SetItemsProcessed(state.iterations() * bg.graph.num_edges());
}
BENCHMARK(BM_HopcroftKarp)->Arg(1 << 9)->Arg(1 << 12);

void BM_Blossom(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(9);
  const Graph g = erdos_renyi(n, 6.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blossom_mcm(g));
  }
}
BENCHMARK(BM_Blossom)->Arg(1 << 7)->Arg(1 << 9);

void BM_GreedyMwm(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(11);
  Graph g = erdos_renyi(n, 8.0 / n, rng);
  auto w = uniform_weights(g.num_edges(), 1.0, 100.0, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_mwm(wg));
  }
}
BENCHMARK(BM_GreedyMwm)->Arg(1 << 10)->Arg(1 << 14);

void BM_Hungarian(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  std::vector<std::vector<double>> profit(n, std::vector<double>(n));
  for (auto& row : profit) {
    for (auto& x : row) x = rng.uniform01() * 100.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_assignment(profit));
  }
}
BENCHMARK(BM_Hungarian)->Arg(32)->Arg(128);

void BM_EngineRound(benchmark::State& state) {
  // Per-round overhead of the synchronous engine with light traffic
  // (the engine_sweep.hpp workload). Rounds run through the non-inline
  // bench_detail::engine_round so the measured instantiation is the
  // same one the sweep modes time.
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(15);
  const Graph g = erdos_renyi(n, 4.0 / n, rng);
  EngineNet net(g, 1, {});
  for (auto _ : state) {
    bench_detail::engine_round(net);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRound)->Arg(1 << 10)->Arg(1 << 14);

void BM_IsraeliItai(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(17);
  const Graph g = erdos_renyi(n, 6.0 / n, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    IsraeliItaiOptions opts;
    opts.seed = seed++;
    benchmark::DoNotOptimize(israeli_itai(g, opts));
  }
}
BENCHMARK(BM_IsraeliItai)->Arg(1 << 10)->Arg(1 << 12);

void BM_LubyMis(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(19);
  const Graph g = erdos_renyi(n, 8.0 / n, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    MisOptions opts;
    opts.seed = seed++;
    benchmark::DoNotOptimize(luby_mis(g, opts));
  }
}
BENCHMARK(BM_LubyMis)->Arg(1 << 10)->Arg(1 << 12);

void BM_BipartiteCounting(benchmark::State& state) {
  const NodeId half = static_cast<NodeId>(state.range(0));
  Rng rng(21);
  const auto bg = random_bipartite(half, half, 6.0 / half, rng);
  const Matching m = greedy_mcm(bg.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        count_augmenting_paths(bg.graph, bg.side, m, 7, {}));
  }
}
BENCHMARK(BM_BipartiteCounting)->Arg(1 << 9)->Arg(1 << 11);

void BM_BigCounterAdd(benchmark::State& state) {
  Rng rng(23);
  BigCounter a(rng()), b(rng());
  for (int i = 0; i < state.range(0); ++i) {
    a.shift_left(31);
    a += BigCounter(rng());
    b.shift_left(31);
    b += BigCounter(rng());
  }
  for (auto _ : state) {
    BigCounter c = a;
    c += b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BigCounterAdd)->Arg(4)->Arg(64);

void BM_BigCounterSampleBelow(benchmark::State& state) {
  Rng rng(29);
  BigCounter bound(1);
  for (int i = 0; i < state.range(0); ++i) {
    bound.shift_left(31);
    bound += BigCounter(rng() | 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigCounter::sample_below(bound, rng));
  }
}
BENCHMARK(BM_BigCounterSampleBelow)->Arg(4)->Arg(64);

}  // namespace
}  // namespace lps

int main(int argc, char** argv) {
  bool smoke = false;
  std::string engine_json;
  bool engine_sweep = false;
  bool shard_sweep = false;
  bool perf_gate = false;
  std::string gate_path = "BENCH_engine.json";
  unsigned shards = 0;
  std::string trace_path;
  bool trace_overhead = false;
  unsigned trace_overhead_exp = 20;
  bool obs_overhead = false;
  unsigned obs_overhead_exp = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--engine-json") == 0) {
      engine_sweep = true;
      engine_json = "BENCH_engine.json";
    } else if (std::strncmp(argv[i], "--engine-json=", 14) == 0) {
      engine_sweep = true;
      engine_json = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<unsigned>(std::strtoul(argv[i] + 9, nullptr, 10));
    } else if (std::strcmp(argv[i], "--shard-sweep") == 0) {
      shard_sweep = true;
    } else if (std::strcmp(argv[i], "--perf-gate") == 0) {
      perf_gate = true;
    } else if (std::strncmp(argv[i], "--perf-gate=", 12) == 0) {
      perf_gate = true;
      gate_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--trace-overhead") == 0) {
      trace_overhead = true;
    } else if (std::strncmp(argv[i], "--trace-overhead=", 17) == 0) {
      trace_overhead = true;
      trace_overhead_exp =
          static_cast<unsigned>(std::strtoul(argv[i] + 17, nullptr, 10));
    } else if (std::strcmp(argv[i], "--obs-overhead") == 0) {
      obs_overhead = true;
    } else if (std::strncmp(argv[i], "--obs-overhead=", 15) == 0) {
      obs_overhead = true;
      obs_overhead_exp =
          static_cast<unsigned>(std::strtoul(argv[i] + 15, nullptr, 10));
    }
  }
  if (trace_overhead) {
    // Manages its own tracer state; --trace would skew the measurement.
    return lps::run_trace_overhead(trace_overhead_exp);
  }
  if (obs_overhead) {
    // Likewise self-managed: the bare half must run uninstrumented.
    return lps::run_obs_overhead(obs_overhead_exp);
  }
  const bool custom = smoke || perf_gate || shard_sweep || engine_sweep;
  const bool tracing = !trace_path.empty();
  if (tracing && !custom) {
    std::fprintf(stderr,
                 "bench_micro: --trace needs a sweep mode (--smoke, "
                 "--engine-json, --shard-sweep or --perf-gate)\n");
    return 2;
  }
  lps::telemetry::Tracer& tracer = lps::telemetry::Tracer::global();
  if (tracing) {
    lps::telemetry::set_enabled(true);
    tracer.reset();
    tracer.set_recording(true);
  }
  int rc = 0;
  if (smoke) {
    rc = lps::run_smoke_checks();
    if (rc == 0) rc = lps::run_engine_sweep("", /*smoke=*/true, shards);
    if (rc == 0) std::printf("bench_micro --smoke: OK\n");
  } else if (perf_gate) {
    rc = lps::run_perf_gate(gate_path);
  } else if (shard_sweep) {
    rc = lps::run_shard_sweep();
  } else if (engine_sweep) {
    rc = lps::run_engine_sweep(engine_json, /*smoke=*/false, shards);
  } else {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  if (tracing) {
    tracer.set_recording(false);
    lps::telemetry::set_enabled(false);
    if (tracer.write_chrome_trace(trace_path)) {
      std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                  tracer.events());
    } else {
      std::fprintf(stderr, "bench_micro: cannot write trace to %s\n",
                   trace_path.c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
