// Experiment MICRO — google-benchmark microbenchmarks of the substrates
// (engineering numbers, not paper claims): exact solvers, the
// synchronous engine's per-round overhead, BigCounter arithmetic, and
// the generators.
//
// Extra modes (custom main):
//   --engine-json[=PATH]  run the engine round-throughput sweep (3 sizes
//                         x 2 densities, fixed seeds) and write PATH
//                         (default BENCH_engine.json, for committing to
//                         the repo root so future PRs can diff).
//   --smoke               tiny sweep + engine sanity asserts, exit 0/1;
//                         the CI bench smoke job runs this in Release.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/bipartite_counting.hpp"
#include "core/israeli_itai.hpp"
#include "core/luby_mis.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "runtime/engine.hpp"
#include "seq/blossom.hpp"
#include "seq/greedy.hpp"
#include "seq/hopcroft_karp.hpp"
#include "seq/hungarian.hpp"
#include "util/bigint.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

void BM_ErdosRenyi(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(erdos_renyi(n, 8.0 / n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ErdosRenyi)->Arg(1 << 10)->Arg(1 << 14);

void BM_HopcroftKarp(benchmark::State& state) {
  const NodeId half = static_cast<NodeId>(state.range(0));
  Rng rng(7);
  const auto bg = random_bipartite(half, half, 6.0 / half, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hopcroft_karp(bg.graph, bg.side));
  }
  state.SetItemsProcessed(state.iterations() * bg.graph.num_edges());
}
BENCHMARK(BM_HopcroftKarp)->Arg(1 << 9)->Arg(1 << 12);

void BM_Blossom(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(9);
  const Graph g = erdos_renyi(n, 6.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blossom_mcm(g));
  }
}
BENCHMARK(BM_Blossom)->Arg(1 << 7)->Arg(1 << 9);

void BM_GreedyMwm(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(11);
  Graph g = erdos_renyi(n, 8.0 / n, rng);
  auto w = uniform_weights(g.num_edges(), 1.0, 100.0, rng);
  const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_mwm(wg));
  }
}
BENCHMARK(BM_GreedyMwm)->Arg(1 << 10)->Arg(1 << 14);

void BM_Hungarian(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  std::vector<std::vector<double>> profit(n, std::vector<double>(n));
  for (auto& row : profit) {
    for (auto& x : row) x = rng.uniform01() * 100.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_assignment(profit));
  }
}
BENCHMARK(BM_Hungarian)->Arg(32)->Arg(128);

// Light-traffic round workload shared by BM_EngineRound, --engine-json
// and --smoke: every 8th node sends one message on its first edge and
// keeps itself active; everyone else only wakes when a message arrives.
// Under active-set scheduling the per-round cost tracks those ~n/4
// touched nodes, not n + m.
struct EngineMsg {
  std::uint32_t x;
};
using EngineNet = SyncNetwork<EngineMsg, DefaultBitMeter<EngineMsg>>;

struct EngineStep {
  void operator()(EngineNet::Ctx& ctx) const {
    if ((ctx.id() & 7u) == 0) {
      ctx.keep_active();
      for (const auto& inc : ctx.graph().neighbors(ctx.id())) {
        ctx.send(inc.edge, EngineMsg{ctx.id()});
        break;
      }
    }
  }
};

void BM_EngineRound(benchmark::State& state) {
  // Per-round overhead of the synchronous engine with light traffic.
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(15);
  const Graph g = erdos_renyi(n, 4.0 / n, rng);
  EngineNet net(g, 1, {});
  for (auto _ : state) {
    net.run_round(EngineStep{});
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRound)->Arg(1 << 10)->Arg(1 << 14);

void BM_IsraeliItai(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(17);
  const Graph g = erdos_renyi(n, 6.0 / n, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    IsraeliItaiOptions opts;
    opts.seed = seed++;
    benchmark::DoNotOptimize(israeli_itai(g, opts));
  }
}
BENCHMARK(BM_IsraeliItai)->Arg(1 << 10)->Arg(1 << 12);

void BM_LubyMis(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(19);
  const Graph g = erdos_renyi(n, 8.0 / n, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    MisOptions opts;
    opts.seed = seed++;
    benchmark::DoNotOptimize(luby_mis(g, opts));
  }
}
BENCHMARK(BM_LubyMis)->Arg(1 << 10)->Arg(1 << 12);

void BM_BipartiteCounting(benchmark::State& state) {
  const NodeId half = static_cast<NodeId>(state.range(0));
  Rng rng(21);
  const auto bg = random_bipartite(half, half, 6.0 / half, rng);
  const Matching m = greedy_mcm(bg.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        count_augmenting_paths(bg.graph, bg.side, m, 7, {}));
  }
}
BENCHMARK(BM_BipartiteCounting)->Arg(1 << 9)->Arg(1 << 11);

void BM_BigCounterAdd(benchmark::State& state) {
  Rng rng(23);
  BigCounter a(rng()), b(rng());
  for (int i = 0; i < state.range(0); ++i) {
    a.shift_left(31);
    a += BigCounter(rng());
    b.shift_left(31);
    b += BigCounter(rng());
  }
  for (auto _ : state) {
    BigCounter c = a;
    c += b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BigCounterAdd)->Arg(4)->Arg(64);

void BM_BigCounterSampleBelow(benchmark::State& state) {
  Rng rng(29);
  BigCounter bound(1);
  for (int i = 0; i < state.range(0); ++i) {
    bound.shift_left(31);
    bound += BigCounter(rng() | 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigCounter::sample_below(bound, rng));
  }
}
BENCHMARK(BM_BigCounterSampleBelow)->Arg(4)->Arg(64);

// ------------------------- engine round-throughput sweep (BENCH_engine) --

struct EngineRunResult {
  NodeId n;
  double avg_deg;
  EdgeId m;
  std::uint64_t rounds;
  std::uint64_t messages;
  double elapsed;

  double rounds_per_sec() const { return rounds / elapsed; }
  double messages_per_sec() const { return messages / elapsed; }
  double ns_per_message() const { return 1e9 * elapsed / messages; }
};

/// Time the EngineStep workload on erdos_renyi(n, avg_deg/n, seed 15):
/// 3 warmup rounds, then rounds until min_seconds elapse (>= 10 rounds).
EngineRunResult measure_engine_rounds(NodeId n, double avg_deg,
                                      double min_seconds) {
  Rng rng(15);
  const Graph g = erdos_renyi(n, avg_deg / n, rng);
  EngineNet net(g, 1, {});
  for (int r = 0; r < 3; ++r) net.run_round(EngineStep{});
  const std::uint64_t msgs0 = net.stats().messages;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t rounds = 0;
  double elapsed = 0.0;
  while (elapsed < min_seconds || rounds < 10) {
    net.run_round(EngineStep{});
    ++rounds;
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return {n,      avg_deg, g.num_edges(),
          rounds, net.stats().messages - msgs0, elapsed};
}

}  // namespace

int run_engine_sweep(const std::string& json_path, bool smoke) {
  const double min_seconds = smoke ? 0.02 : 0.5;
  std::vector<std::pair<NodeId, double>> configs;
  if (smoke) {
    configs = {{1u << 10, 4.0}, {1u << 12, 16.0}};
  } else {
    configs = {{1u << 14, 4.0},  {1u << 14, 16.0}, {1u << 17, 4.0},
               {1u << 17, 16.0}, {1u << 20, 4.0},  {1u << 20, 16.0}};
  }
  std::vector<EngineRunResult> results;
  for (const auto& [n, avg_deg] : configs) {
    EngineRunResult r = measure_engine_rounds(n, avg_deg, min_seconds);
    if (r.messages == 0 || r.rounds == 0) {
      std::fprintf(stderr, "engine sweep: no traffic at n=%u\n", n);
      return 1;
    }
    std::printf(
        "engine n=%-8u avg_deg=%-4.0f m=%-9u rounds/s=%-10.1f "
        "msgs/s=%-12.0f ns/msg=%.1f\n",
        r.n, r.avg_deg, r.m, r.rounds_per_sec(), r.messages_per_sec(),
        r.ns_per_message());
    results.push_back(r);
  }
  if (json_path.empty()) return 0;
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"schema\": \"lps-bench-engine-v1\",\n"
      << "  \"harness\": \"erdos_renyi(n, avg_deg/n, seed 15); every 8th "
         "node keep-active-sends 1 msg on its first edge per round; 3 "
         "warmup rounds then >=0.5s timed\",\n"
      << "  \"generated_by\": \"bench_micro --engine-json\",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const EngineRunResult& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"n\": %u, \"avg_deg\": %.0f, \"m\": %u, "
                  "\"rounds\": %llu, \"rounds_per_sec\": %.1f, "
                  "\"messages_per_sec\": %.0f, "
                  "\"ns_per_delivered_message\": %.1f}%s\n",
                  r.n, r.avg_deg, r.m,
                  static_cast<unsigned long long>(r.rounds),
                  r.rounds_per_sec(), r.messages_per_sec(),
                  r.ns_per_message(), i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

/// Cheap invariant checks for the CI smoke job: crash/assert here means
/// the engine or a migrated protocol regressed in Release mode.
int run_smoke_checks() {
  // Active-set and step-everything executions must be bit-identical.
  Rng rng(77);
  const Graph g = erdos_renyi(1u << 10, 6.0 / (1u << 10), rng);
  IsraeliItaiOptions a;
  a.seed = 9;
  IsraeliItaiOptions b = a;
  b.step_all_nodes = true;
  const auto ra = israeli_itai(g, a);
  const auto rb = israeli_itai(g, b);
  if (ra.matching.size() != rb.matching.size() ||
      ra.stats.messages != rb.stats.messages ||
      ra.stats.total_bits != rb.stats.total_bits ||
      ra.stats.rounds != rb.stats.rounds) {
    std::fprintf(stderr, "smoke: active-set != step_all on israeli_itai\n");
    return 1;
  }
  // Double-send on one channel must still throw.
  const Graph p = path_graph(2);
  EngineNet net(p, 1, {});
  bool threw = false;
  try {
    net.run_round([&](EngineNet::Ctx& ctx) {
      if (ctx.id() == 0) {
        ctx.send(0, EngineMsg{1});
        ctx.send(0, EngineMsg{2});
      }
    });
  } catch (const std::logic_error&) {
    threw = true;
  }
  if (!threw) {
    std::fprintf(stderr, "smoke: double-send did not throw\n");
    return 1;
  }
  return 0;
}

}  // namespace lps

int main(int argc, char** argv) {
  bool smoke = false;
  std::string engine_json;
  bool engine_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--engine-json") == 0) {
      engine_sweep = true;
      engine_json = "BENCH_engine.json";
    } else if (std::strncmp(argv[i], "--engine-json=", 14) == 0) {
      engine_sweep = true;
      engine_json = argv[i] + 14;
    }
  }
  if (smoke) {
    if (int rc = lps::run_smoke_checks(); rc != 0) return rc;
    if (int rc = lps::run_engine_sweep("", /*smoke=*/true); rc != 0) return rc;
    std::printf("bench_micro --smoke: OK\n");
    return 0;
  }
  if (engine_sweep) {
    return lps::run_engine_sweep(engine_json, /*smoke=*/false);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
