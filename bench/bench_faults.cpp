// Experiment suite FAULTS — degradation and recovery under the failure-
// scenario registry (src/faults/scenarios): every registered fault
// profile is driven through the runner against both fault surfaces, and
// the suite gates on the recovery claims rather than just printing.
//
//   * engine rows: israeli_itai under message-layer faults (drop /
//     duplicate / bounded delay / inbox reorder) on an ER graph. The
//     gate: the post-resync matching is valid and within 0.9x of the
//     fault-free matching size at the same seed.
//   * maintainer rows: greedy and repair maintainers under graph-layer
//     fault epochs (vertex crash/recover flaps, adaptive adversary
//     deleting matched edges) after a churn stream. The gate: every
//     epoch-end audit passes and the terminal heal re-attains >= 0.9x
//     the fault-free baseline. Recovery latency lands as p50/p99 ns.
//
// Scenarios with both fault families (chaos) produce rows on both
// surfaces. --smoke restricts to the registry's smoke subset at small n
// (the CI sanitizer leg); the full run measures n = 2^18.
//
//   ./bench_faults [--smoke] [--n 262144] [--json true]
//                  [--json-path BENCH_faults.json] [--trace out.json]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/json.hpp"
#include "api/runner.hpp"
#include "bench/bench_common.hpp"
#include "faults/scenarios.hpp"

using namespace lps;
using bench::fmt;

namespace {

struct Row {
  std::string scenario;
  std::string surface;  // "engine" | "maintainer"
  std::string subject;  // solver or maintainer name
  std::int64_t n = 0;
  api::RunResult res;
  /// Engine rows: faulted size / fault-free size (same seeds).
  /// Maintainer rows: the session's terminal-heal ratio.
  double ratio = 0.0;
  double min_ratio = 0.0;  // maintainer rows: worst epoch-end ratio
  bool valid = false;
  double resyncs = 0.0;  // engine rows: corrective sweeps
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bool smoke = opts.get_bool("smoke", false);
  const std::int64_t n = opts.get_int("n", smoke ? 4096 : (1 << 18));
  const bool emit_json = opts.get_bool("json", !smoke);
  const std::string json_path = opts.get("json-path", "BENCH_faults.json");
  const bench::TraceGuard trace(opts);

  bench::print_header(
      "Fault injection: degradation and recovery per failure profile",
      "under every registered fault profile (drop <= 10%, dup <= 5%, delay "
      "<= 4 rounds, 1% vertex flaps, adversarial delete-matched) the engine "
      "clients resync to a valid matching within 0.9x of fault-free size, "
      "and the maintainers end every fault epoch valid with the repair "
      "maintainer re-attaining >= 0.9x after the terminal heal");

  Table t({"scenario", "surface", "subject", "n", "size", "ratio",
           "ratio (min)", "recovery p50 (us)", "recovery p99 (us)", "resyncs",
           "valid"});
  std::vector<Row> rows;

  const std::string generator =
      "er:n=" + std::to_string(n) + ",deg=8";
  // Fault-free reference size for the engine rows, same seeds/specs.
  std::size_t fault_free_size = 0;
  {
    api::RunSpec spec;
    spec.generator = generator;
    spec.solver = "israeli_itai";
    spec.oracle = "none";
    spec.telemetry = false;
    fault_free_size = api::run_one(spec).matching_size;
  }

  const std::string stream = "churn:n=" + std::to_string(n) +
                             ",m0=" + std::to_string(2 * n) +
                             ",updates=" + std::to_string(smoke ? 2000 : 20000);

  for (const faults::FaultScenario& sc : faults::fault_scenarios()) {
    if (smoke && !sc.smoke) continue;
    const faults::FaultPlan plan = faults::make_fault_plan(sc.name);

    if (plan.message_faults()) {
      api::RunSpec spec;
      spec.generator = generator;
      spec.solver = "israeli_itai";
      spec.oracle = "none";
      spec.telemetry = false;
      // Message-layer faults only: the graph half of a combined profile
      // is exercised by the maintainer row below.
      faults::FaultPlan msg = plan;
      msg.flap = 0.0;
      msg.adversarial = 0.0;
      msg.epochs = 0;
      spec.faults = msg.to_spec();
      Row row;
      row.scenario = sc.name;
      row.surface = "engine";
      row.subject = "israeli_itai";
      row.n = n;
      row.res = api::run_one(spec);
      row.ratio = fault_free_size > 0
                      ? static_cast<double>(row.res.matching_size) /
                            static_cast<double>(fault_free_size)
                      : 1.0;
      row.min_ratio = row.ratio;
      row.valid = row.res.valid;
      row.resyncs = row.res.metrics.count("resyncs")
                        ? row.res.metrics.at("resyncs")
                        : 0.0;
      t.row();
      t.cell(row.scenario);
      t.cell(row.surface);
      t.cell(row.subject);
      t.cell(static_cast<std::size_t>(row.n));
      t.cell(static_cast<std::size_t>(row.res.matching_size));
      t.cell(fmt(row.ratio, 4));
      t.cell(fmt(row.min_ratio, 4));
      t.cell("-");
      t.cell("-");
      t.cell(fmt(row.resyncs, 0));
      t.cell(row.valid ? 1 : 0);
      rows.push_back(std::move(row));
    }

    if (plan.graph_faults()) {
      for (const char* maintainer : {"greedy", "repair"}) {
        api::RunSpec spec;
        // The static solve is a stand-in (the fault session is the
        // point); keep it trivial so the row's cost is the session.
        spec.generator = "path:n=2";
        spec.solver = "greedy_mcm";
        spec.oracle = "none";
        spec.dynamic = maintainer;
        spec.dynamic_stream = stream;
        spec.dynamic_checkpoints = 0;
        // Graph-layer faults only: message faults have no engine to act
        // on in the dynamic leg.
        faults::FaultPlan graph = plan;
        graph.drop = 0.0;
        graph.dup = 0.0;
        graph.delay_p = 0.0;
        graph.delay_rounds = 0;
        graph.reorder = false;
        spec.faults = graph.to_spec();
        Row row;
        row.scenario = sc.name;
        row.surface = "maintainer";
        row.subject = maintainer;
        row.n = n;
        row.res = api::run_one(spec);
        row.ratio = row.res.fault_final_ratio;
        row.min_ratio = row.res.fault_min_ratio;
        row.valid = row.res.dynamic_valid && row.res.fault_all_valid &&
                    row.res.fault_final_valid;
        t.row();
        t.cell(row.scenario);
        t.cell(row.surface);
        t.cell(row.subject);
        t.cell(static_cast<std::size_t>(row.n));
        t.cell(static_cast<std::size_t>(row.res.fault_baseline_size));
        t.cell(fmt(row.ratio, 4));
        t.cell(fmt(row.min_ratio, 4));
        t.cell(fmt(static_cast<double>(row.res.fault_recovery_p50_ns) / 1e3, 1));
        t.cell(fmt(static_cast<double>(row.res.fault_recovery_p99_ns) / 1e3, 1));
        t.cell("-");
        t.cell(row.valid ? 1 : 0);
        rows.push_back(std::move(row));
      }
    }
  }
  bench::print_table(t);

  // The gates: validity everywhere; the 0.9x recovery floor on the
  // engine clients and the repair maintainer (greedy has no repair
  // machinery, so only validity is demanded of it).
  bool ok = true;
  for (const Row& row : rows) {
    if (!row.valid) {
      std::cerr << "FAIL: invalid result in " << row.surface << "/"
                << row.subject << " @ " << row.scenario << "\n";
      ok = false;
    }
    const bool gated = row.surface == "engine" || row.subject == "repair";
    if (gated && row.ratio < 0.9) {
      std::cerr << "FAIL: recovery ratio " << row.ratio << " < 0.9 in "
                << row.surface << "/" << row.subject << " @ " << row.scenario
                << "\n";
      ok = false;
    }
  }

  if (emit_json && !rows.empty()) {
    std::ofstream os(json_path);
    os << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      api::JsonObject o;
      o.add("scenario", row.scenario)
          .add("surface", row.surface)
          .add("subject", row.subject)
          .add("n", static_cast<std::uint64_t>(row.n))
          .add("fault_plan", row.res.fault_plan.empty() ? row.res.spec.faults
                                                        : row.res.fault_plan)
          .add("matching_size",
               static_cast<std::uint64_t>(row.surface == "engine"
                                              ? row.res.matching_size
                                              : row.res.fault_baseline_size))
          .add("ratio", row.ratio)
          .add("ratio_min", row.min_ratio)
          .add("recovery_p50_ns", row.res.fault_recovery_p50_ns)
          .add("recovery_p99_ns", row.res.fault_recovery_p99_ns)
          .add("recourse", row.res.fault_recourse)
          .add("resyncs", row.resyncs)
          .add("valid", row.valid)
          .add("git_sha", row.res.prov_git_sha)
          .add("build_type", row.res.prov_build_type)
          .add("timestamp_utc", row.res.prov_timestamp_utc);
      os << "  " << o.str() << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "]\n";
    std::cout << "wrote " << rows.size() << " rows to " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
