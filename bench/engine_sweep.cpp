// Implementation of bench_micro's engine sweep modes (engine_sweep.hpp).
// Kept as a small TU so the engine's hot-loop instantiations get clean
// codegen — see the header comment for the measured why.
#include "bench/engine_sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/israeli_itai.hpp"
#include "graph/generators.hpp"
#include "runtime/shard.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace lps {
namespace {

struct EngineStep {
  void operator()(EngineNet::Ctx& ctx) const {
    if ((ctx.id() & 7u) == 0) {
      ctx.keep_active();
      for (const auto& inc : ctx.graph().neighbors(ctx.id())) {
        ctx.send(inc.edge, EngineMsg{ctx.id()});
        break;
      }
    }
  }
};

struct EngineRunResult {
  NodeId n;
  double avg_deg;
  EdgeId m;
  unsigned shards;  // shard count the engine actually used
  std::uint64_t rounds;
  std::uint64_t messages;
  double elapsed;

  double rounds_per_sec() const { return rounds / elapsed; }
  double messages_per_sec() const { return messages / elapsed; }
  double ns_per_message() const { return 1e9 * elapsed / messages; }
};

/// Time the EngineStep workload on an already-built graph: fresh
/// engine, 3 warmup rounds, then rounds until min_seconds elapse
/// (>= 10 rounds).
EngineRunResult measure_engine_rounds_on(const Graph& g, NodeId n,
                                         double avg_deg, double min_seconds,
                                         unsigned shards_req) {
  EngineNet net(g, 1, {});
  net.set_shards(shards_req);
  for (int r = 0; r < 3; ++r) net.run_round(EngineStep{});
  const std::uint64_t msgs0 = net.stats().messages;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t rounds = 0;
  double elapsed = 0.0;
  while (elapsed < min_seconds || rounds < 10) {
    net.run_round(EngineStep{});
    ++rounds;
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return {n,      avg_deg,       g.num_edges(), net.shards(),
          rounds, net.stats().messages - msgs0, elapsed};
}

/// Convenience wrapper: generate erdos_renyi(n, avg_deg/n, seed 15) and
/// measure on it.
EngineRunResult measure_engine_rounds(NodeId n, double avg_deg,
                                      double min_seconds,
                                      unsigned shards_req) {
  Rng rng(15);
  const Graph g = erdos_renyi(n, avg_deg / n, rng);
  return measure_engine_rounds_on(g, n, avg_deg, min_seconds, shards_req);
}

void print_engine_row(const EngineRunResult& r) {
  std::printf(
      "engine n=%-8u avg_deg=%-4.0f m=%-9u shards=%-4u rounds/s=%-10.1f "
      "msgs/s=%-12.0f ns/msg=%.1f\n",
      r.n, r.avg_deg, r.m, r.shards, r.rounds_per_sec(),
      r.messages_per_sec(), r.ns_per_message());
}

// ------------------------------------------- tracing-overhead probe --

struct TraceOverheadResult {
  EngineRunResult off;   // telemetry switched off
  EngineRunResult on;    // metrics + span recording on
  std::size_t events = 0;  // spans captured during the best traced repeat

  double overhead_frac() const {
    return 1.0 - on.rounds_per_sec() / off.rounds_per_sec();
  }
};

/// Best-of-`reps` untraced vs fully traced (metrics on + span recording
/// on) runs of the EngineStep workload. Best-of on both sides: peak
/// throughput is the noise-stable quantity, and comparing peaks isolates
/// the instrumentation cost from scheduler jitter.
TraceOverheadResult measure_trace_overhead(NodeId n, double avg_deg,
                                           double min_seconds, int reps) {
  TraceOverheadResult out{};
  for (int rep = 0; rep < reps; ++rep) {
    const EngineRunResult r =
        measure_engine_rounds(n, avg_deg, min_seconds, /*shards=*/0);
    if (rep == 0 || r.rounds_per_sec() > out.off.rounds_per_sec()) {
      out.off = r;
    }
  }
  telemetry::Tracer& tracer = telemetry::Tracer::global();
  const bool prev = telemetry::enabled();
  telemetry::set_enabled(true);
  for (int rep = 0; rep < reps; ++rep) {
    tracer.reset();  // fresh event budget per repeat — no drop skew
    tracer.set_recording(true);
    const EngineRunResult r =
        measure_engine_rounds(n, avg_deg, min_seconds, /*shards=*/0);
    tracer.set_recording(false);
    if (rep == 0 || r.rounds_per_sec() > out.on.rounds_per_sec()) {
      out.on = r;
      out.events = tracer.events();
    }
  }
  telemetry::set_enabled(prev);
  tracer.reset();
  return out;
}

/// Re-measure one gate row with metrics on and print where the round
/// time goes — the first clue when a gate row regresses. Per-round
/// means from EngineMetrics deltas; p2/sort/shard sums are totals
/// across shards, matching the runner's telemetry block.
void print_phase_breakdown(NodeId n, double avg_deg) {
  const bool prev = telemetry::enabled();
  telemetry::set_enabled(true);
  if (!telemetry::enabled()) {
    std::printf("  (telemetry compiled out — no phase breakdown)\n");
    return;
  }
  telemetry::EngineMetrics& em = telemetry::EngineMetrics::get();
  const std::uint64_t rounds0 = em.rounds.value();
  telemetry::HistogramSnapshot round = em.round_ns.snapshot();
  telemetry::HistogramSnapshot p1 = em.exchange_p1_ns.snapshot();
  telemetry::HistogramSnapshot p2 = em.exchange_p2_ns.snapshot();
  telemetry::HistogramSnapshot sort = em.inbox_sort_ns.snapshot();
  telemetry::HistogramSnapshot step = em.step_ns.snapshot();
  measure_engine_rounds(n, avg_deg, /*min_seconds=*/0.2, /*shards=*/0);
  const std::uint64_t rounds = em.rounds.value() - rounds0;
  telemetry::set_enabled(prev);
  if (rounds == 0) return;
  const auto per_round = [rounds](telemetry::Histogram& h,
                                  const telemetry::HistogramSnapshot& before) {
    telemetry::HistogramSnapshot s = h.snapshot();
    s -= before;
    return static_cast<double>(s.sum) / static_cast<double>(rounds);
  };
  std::printf(
      "  phase/round: exchange_p1=%.0fns exchange_p2=%.0fns "
      "inbox_sort=%.0fns step=%.0fns round=%.0fns\n",
      per_round(em.exchange_p1_ns, p1), per_round(em.exchange_p2_ns, p2),
      per_round(em.inbox_sort_ns, sort), per_round(em.step_ns, step),
      per_round(em.round_ns, round));
}

/// Top-level `"key": value` blocks of `text` whose key contains
/// "baseline", returned verbatim (value brace/bracket-matched). This is
/// what keeps hand-annotated baseline blocks alive across --engine-json
/// regenerations.
std::vector<std::pair<std::string, std::string>> baseline_blocks(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  int depth = 0;
  bool in_string = false;
  std::string key;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      } else {
        key += c;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      key.clear();
      continue;
    }
    if (c == '{' || c == '[') {
      ++depth;
      continue;
    }
    if (c == '}' || c == ']') {
      --depth;
      continue;
    }
    if (c == ':' && depth == 1 && key.find("baseline") != std::string::npos) {
      // Capture the value: skip whitespace, then match braces/brackets
      // (baseline values are objects; scalars end at , or }).
      std::size_t j = i + 1;
      while (j < text.size() && (text[j] == ' ' || text[j] == '\n')) ++j;
      std::size_t start = j;
      int vdepth = 0;
      bool vstring = false;
      for (; j < text.size(); ++j) {
        const char vc = text[j];
        if (vstring) {
          if (vc == '\\') {
            ++j;
          } else if (vc == '"') {
            vstring = false;
          }
          continue;
        }
        if (vc == '"') {
          vstring = true;
        } else if (vc == '{' || vc == '[') {
          ++vdepth;
        } else if (vc == '}' || vc == ']') {
          if (vdepth == 0) break;  // enclosing object closed (scalar value)
          --vdepth;
          if (vdepth == 0) {
            ++j;
            break;
          }
        } else if ((vc == ',') && vdepth == 0) {
          break;
        }
      }
      out.emplace_back(key, text.substr(start, j - start));
      i = j - 1;
    }
  }
  return out;
}

/// Best-effort numeric field extraction from one flat JSON object row.
bool json_field(const std::string& row, const char* name, double* value) {
  const std::string needle = std::string("\"") + name + "\":";
  const std::size_t pos = row.find(needle);
  if (pos == std::string::npos) return false;
  *value = std::strtod(row.c_str() + pos + needle.size(), nullptr);
  return true;
}

/// The rows of the top-level "results" array, one string per object.
std::vector<std::string> result_rows(const std::string& text) {
  std::vector<std::string> rows;
  const std::size_t arr = text.find("\"results\":");
  if (arr == std::string::npos) return rows;
  std::size_t i = text.find('[', arr);
  if (i == std::string::npos) return rows;
  for (++i; i < text.size() && text[i] != ']'; ++i) {
    if (text[i] != '{') continue;
    const std::size_t end = text.find('}', i);
    if (end == std::string::npos) break;
    rows.push_back(text.substr(i, end - i + 1));
    i = end;
  }
  return rows;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

namespace bench_detail {
void engine_round(EngineNet& net) { net.run_round(EngineStep{}); }
}  // namespace bench_detail

int run_engine_sweep(const std::string& json_path, bool smoke,
                     unsigned shards_req) {
  const double min_seconds = smoke ? 0.02 : 0.5;
  std::vector<std::pair<NodeId, double>> configs;
  if (smoke) {
    configs = {{1u << 10, 4.0}, {1u << 12, 16.0}};
  } else {
    configs = {{1u << 14, 4.0},  {1u << 14, 16.0}, {1u << 17, 4.0},
               {1u << 17, 16.0}, {1u << 20, 4.0},  {1u << 20, 16.0},
               {1u << 24, 4.0}};
  }
  std::vector<EngineRunResult> results;
  for (const auto& [n, avg_deg] : configs) {
    // Best-of-5 per row, graph and engine rebuilt fresh each rep, same
    // discipline as the perf gate and the overhead probes: peak
    // throughput is the noise-stable quantity on a host with
    // DRAM-bandwidth jitter; a single 0.5s window can read 1.5-2x slow
    // when a burst lands on it. The rebuild matters as much as the
    // repeat — the graph is deterministic (seed 15) so the bits are
    // identical, but a fresh allocation rerolls page placement, and one
    // badly-placed CSR block would otherwise tax all five reps.
    EngineRunResult r{};
    for (int rep = 0; rep < 5; ++rep) {
      const EngineRunResult one =
          measure_engine_rounds(n, avg_deg, min_seconds, shards_req);
      if (rep == 0 || one.rounds_per_sec() > r.rounds_per_sec()) r = one;
    }
    if (r.messages == 0 || r.rounds == 0) {
      std::fprintf(stderr, "engine sweep: no traffic at n=%u\n", n);
      return 1;
    }
    print_engine_row(r);
    // Ledger rows keyed to join against the BENCH_engine.json baseline
    // (perf_diff pins per config+metric): rounds/sec as the throughput
    // series, ns/msg as the per-message-cost series — the schema v3
    // pair every sweep row trends.
    const std::string cfg =
        "engine:n=" + std::to_string(r.n) + ",deg=" +
        std::to_string(static_cast<unsigned>(r.avg_deg));
    bench::ledger_append(cfg, "rounds_per_sec", r.rounds_per_sec(),
                         /*higher_is_better=*/true);
    bench::ledger_append(cfg, "ns_per_msg", r.ns_per_message(),
                         /*higher_is_better=*/false);
    results.push_back(r);
  }
  if (json_path.empty()) return 0;
  // The telemetry acceptance number rides along with every full
  // regeneration: traced vs untraced throughput at the flagship
  // n=2^20 deg 4 row (ISSUE 7 budget: <= 5% rounds/sec).
  TraceOverheadResult overhead{};
  if (!smoke && telemetry::Tracer::global().recording()) {
    // The probe's "untraced" half would record into the outer --trace
    // (and its reset() would erase it) — skip under an active trace.
    std::printf("tracing overhead probe skipped (outer --trace active)\n");
  } else if (!smoke) {
    overhead = measure_trace_overhead(1u << 20, 4.0, min_seconds, 3);
    std::printf("untraced ");
    print_engine_row(overhead.off);
    std::printf("traced   ");
    print_engine_row(overhead.on);
    std::printf("tracing overhead: %.2f%% rounds/sec (%zu events)\n",
                100.0 * overhead.overhead_frac(), overhead.events);
  }
  // Preserve hand-annotated baseline blocks from the previous file: a
  // regeneration must not erase the history the perf gate and the PR
  // notes diff against.
  const std::vector<std::pair<std::string, std::string>> keep =
      baseline_blocks(read_file(json_path));
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  const CacheInfo& cache = detect_cache();
  out << "{\n"
      << "  \"schema\": \"lps-bench-engine-v3\",\n"
      << "  \"harness\": \"erdos_renyi(n, avg_deg/n, seed 15); every 8th "
         "node keep-active-sends 1 msg on its first edge per round; 3 "
         "warmup rounds then >=0.5s timed, best of 5 repeats\",\n"
      << "  \"generated_by\": \"bench_micro --engine-json\",\n"
      << "  \"cache\": {\"l2_bytes\": " << cache.l2_bytes
      << ", \"l3_bytes\": " << cache.l3_bytes << "},\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const EngineRunResult& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"n\": %u, \"avg_deg\": %.0f, \"m\": %u, "
                  "\"shards\": %u, \"rounds\": %llu, "
                  "\"rounds_per_sec\": %.1f, \"messages_per_sec\": %.0f, "
                  "\"ns_per_delivered_message\": %.1f}%s\n",
                  r.n, r.avg_deg, r.m, r.shards,
                  static_cast<unsigned long long>(r.rounds),
                  r.rounds_per_sec(), r.messages_per_sec(),
                  r.ns_per_message(), i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]";
  if (!smoke && overhead.off.rounds > 0) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        ",\n  \"telemetry_overhead\": {\"n\": %u, \"avg_deg\": %.0f, "
        "\"untraced_rounds_per_sec\": %.1f, \"traced_rounds_per_sec\": %.1f, "
        "\"untraced_ns_per_msg\": %.1f, \"traced_ns_per_msg\": %.1f, "
        "\"overhead_frac\": %.4f, \"trace_events\": %zu}",
        overhead.off.n, overhead.off.avg_deg, overhead.off.rounds_per_sec(),
        overhead.on.rounds_per_sec(), overhead.off.ns_per_message(),
        overhead.on.ns_per_message(), overhead.overhead_frac(),
        overhead.events);
    out << buf;
  }
  for (const auto& [key, value] : keep) {
    out << ",\n  \"" << key << "\": " << value;
  }
  out << "\n}\n";
  std::printf("wrote %s (%zu baseline block%s preserved)\n",
              json_path.c_str(), keep.size(), keep.size() == 1 ? "" : "s");
  return 0;
}

int run_shard_sweep() {
  // The locality curve: one size, one density, shard count swept. Auto
  // (0) last so the chosen count is visible against the forced points.
  const NodeId n = 1u << 20;
  for (unsigned s : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 0u}) {
    EngineRunResult r = measure_engine_rounds(n, 4.0, 0.5, s);
    std::printf("%s", s == 0 ? "(auto) " : "       ");
    print_engine_row(r);
  }
  return 0;
}

/// CI perf-regression gate: re-measure the sweep rows with n <= 2^17
/// (the big rows are too slow for CI) and fail when rounds/sec drops
/// more than 20% below the checked-in baseline file. Each row takes
/// the best of three repeats — peak throughput is the stable quantity
/// under scheduler noise; a real regression lowers all three. The
/// documented override for noisy hosts: LPS_BENCH_GATE_SKIP=1 reports
/// but exits 0.
int run_perf_gate(const std::string& baseline_path) {
  const std::string text = read_file(baseline_path);
  if (text.empty()) {
    std::fprintf(stderr, "perf gate: cannot read %s\n",
                 baseline_path.c_str());
    return 1;
  }
  const std::vector<std::string> rows = result_rows(text);
  if (rows.empty()) {
    std::fprintf(stderr, "perf gate: no results in %s\n",
                 baseline_path.c_str());
    return 1;
  }
  bool failed = false;
  std::size_t compared = 0;
  for (const std::string& row : rows) {
    double bn = 0.0, bdeg = 0.0, brps = 0.0;
    if (!json_field(row, "n", &bn) || !json_field(row, "avg_deg", &bdeg) ||
        !json_field(row, "rounds_per_sec", &brps) || brps <= 0.0) {
      continue;
    }
    if (bn > static_cast<double>(1u << 17)) continue;  // CI time budget
    Rng rng(15);
    const Graph g =
        erdos_renyi(static_cast<NodeId>(bn), bdeg / bn, rng);
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const EngineRunResult r = measure_engine_rounds_on(
          g, static_cast<NodeId>(bn), bdeg, /*min_seconds=*/0.2,
          /*shards=*/0);
      best = std::max(best, r.rounds_per_sec());
    }
    ++compared;
    const double ratio = best / brps;
    std::printf(
        "perf gate n=%-8.0f avg_deg=%-4.0f baseline=%-10.1f now=%-10.1f "
        "ratio=%.2f%s\n",
        bn, bdeg, brps, best, ratio,
        ratio < 0.8 ? "  << REGRESSION" : "");
    if (ratio < 0.8) {
      failed = true;
      print_phase_breakdown(static_cast<NodeId>(bn), bdeg);
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "perf gate: no comparable rows in %s\n",
                 baseline_path.c_str());
    return 1;
  }
  if (failed) {
    const char* skip = std::getenv("LPS_BENCH_GATE_SKIP");
    if (skip != nullptr && skip[0] == '1') {
      std::printf(
          "perf gate: regression detected but LPS_BENCH_GATE_SKIP=1 — "
          "ignoring\n");
      return 0;
    }
    std::fprintf(stderr,
                 "perf gate: rounds/sec regressed >20%% vs %s (set "
                 "LPS_BENCH_GATE_SKIP=1 to override on noisy hosts)\n",
                 baseline_path.c_str());
    return 1;
  }
  std::printf("perf gate: OK (%zu rows within 20%% of %s)\n", compared,
              baseline_path.c_str());
  return 0;
}

/// CI tracing-overhead gate (--trace-overhead): the telemetry contract
/// says a fully traced engine run (metrics + span recording on) stays
/// within 5% of untraced rounds/sec. Same best-of-3 discipline and
/// LPS_BENCH_GATE_SKIP override as the perf gate.
int run_trace_overhead(unsigned nexp) {
  telemetry::set_enabled(true);
  if (!telemetry::enabled()) {
    std::printf(
        "trace overhead: telemetry compiled out (LPS_TELEMETRY=0) — "
        "nothing to gate\n");
    return 0;
  }
  telemetry::set_enabled(false);
  const NodeId n = NodeId{1} << nexp;
  const TraceOverheadResult r = measure_trace_overhead(n, 4.0, 0.3, 3);
  std::printf("untraced ");
  print_engine_row(r.off);
  std::printf("traced   ");
  print_engine_row(r.on);
  const double frac = r.overhead_frac();
  std::printf(
      "trace overhead: %.2f%% rounds/sec (%zu events captured, budget "
      "5%%)\n",
      100.0 * frac, r.events);
  if (frac > 0.05) {
    const char* skip = std::getenv("LPS_BENCH_GATE_SKIP");
    if (skip != nullptr && skip[0] == '1') {
      std::printf(
          "trace overhead: over budget but LPS_BENCH_GATE_SKIP=1 — "
          "ignoring\n");
      return 0;
    }
    std::fprintf(stderr,
                 "trace overhead: traced run >5%% slower than untraced (set "
                 "LPS_BENCH_GATE_SKIP=1 to override on noisy hosts)\n");
    return 1;
  }
  return 0;
}

/// CI observability-overhead gate (--obs-overhead): the PR 9 acceptance
/// budget — a run with the structured EventLog recording and a silent
/// Monitor sampling the progress board stays within 5% of bare
/// rounds/sec. Same best-of-3 discipline and LPS_BENCH_GATE_SKIP
/// override as the other gates.
int run_obs_overhead(unsigned nexp) {
  telemetry::EventLog& elog = telemetry::EventLog::global();
  elog.set_recording(true);
  if (!elog.recording()) {
    std::printf(
        "obs overhead: telemetry compiled out (LPS_TELEMETRY=0) — "
        "nothing to gate\n");
    return 0;
  }
  elog.set_recording(false);
  const NodeId n = NodeId{1} << nexp;
  EngineRunResult off{};
  EngineRunResult on{};
  std::size_t events = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const EngineRunResult r =
        measure_engine_rounds(n, 4.0, /*min_seconds=*/0.3, /*shards=*/0);
    if (rep == 0 || r.rounds_per_sec() > off.rounds_per_sec()) off = r;
  }
  for (int rep = 0; rep < 3; ++rep) {
    elog.reset();  // fresh event budget per repeat — no drop skew
    elog.set_recording(true);
    telemetry::MonitorOptions mo;
    mo.interval_ms = 50;
    mo.out = nullptr;  // silent: sample the board, print nothing
    {
      telemetry::Monitor monitor(mo);
      const EngineRunResult r =
          measure_engine_rounds(n, 4.0, /*min_seconds=*/0.3, /*shards=*/0);
      monitor.stop();
      if (rep == 0 || r.rounds_per_sec() > on.rounds_per_sec()) {
        on = r;
        events = elog.events();
      }
    }
    elog.set_recording(false);
  }
  elog.reset();
  std::printf("bare     ");
  print_engine_row(off);
  std::printf("observed ");
  print_engine_row(on);
  const double frac = 1.0 - on.rounds_per_sec() / off.rounds_per_sec();
  std::printf(
      "obs overhead: %.2f%% rounds/sec (%zu events recorded, budget 5%%)\n",
      100.0 * frac, events);
  if (frac > 0.05) {
    const char* skip = std::getenv("LPS_BENCH_GATE_SKIP");
    if (skip != nullptr && skip[0] == '1') {
      std::printf(
          "obs overhead: over budget but LPS_BENCH_GATE_SKIP=1 — "
          "ignoring\n");
      return 0;
    }
    std::fprintf(stderr,
                 "obs overhead: event-log + monitor run >5%% slower than "
                 "bare (set LPS_BENCH_GATE_SKIP=1 to override on noisy "
                 "hosts)\n");
    return 1;
  }
  return 0;
}

/// Cheap invariant checks for the CI smoke job: crash/assert here means
/// the engine or a migrated protocol regressed in Release mode.
int run_smoke_checks() {
  // Active-set and step-everything executions must be bit-identical.
  Rng rng(77);
  const Graph g = erdos_renyi(1u << 10, 6.0 / (1u << 10), rng);
  IsraeliItaiOptions a;
  a.seed = 9;
  IsraeliItaiOptions b = a;
  b.step_all_nodes = true;
  const auto ra = israeli_itai(g, a);
  const auto rb = israeli_itai(g, b);
  if (ra.matching.size() != rb.matching.size() ||
      ra.stats.messages != rb.stats.messages ||
      ra.stats.total_bits != rb.stats.total_bits ||
      ra.stats.rounds != rb.stats.rounds) {
    std::fprintf(stderr, "smoke: active-set != step_all on israeli_itai\n");
    return 1;
  }
  // Double-send on one channel must still throw.
  const Graph p = path_graph(2);
  EngineNet net(p, 1, {});
  bool threw = false;
  try {
    net.run_round([&](EngineNet::Ctx& ctx) {
      if (ctx.id() == 0) {
        ctx.send(0, EngineMsg{1});
        ctx.send(0, EngineMsg{2});
      }
    });
  } catch (const std::logic_error&) {
    threw = true;
  }
  if (!threw) {
    std::fprintf(stderr, "smoke: double-send did not throw\n");
    return 1;
  }
  return 0;
}

}  // namespace lps
