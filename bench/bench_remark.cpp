// Experiment REMARK — Section 4's closing remark: "(1-eps)-MWM can be
// obtained in O(eps^-4 log^2 n) time, using messages of linear size, by
// adapting the PRAM algorithm of Hougardy and Vinkemeier [14] ... using
// Algorithm 2."
//
// Regenerated series: for beta = 1..4 (eps = 1/(beta+1)), the fixed
// point of the beta-augmentation local search: achieved ratio vs the
// certified beta/(beta+1) floor, phases to convergence, physical rounds,
// and the LOCAL-model message widths (linear-size, per the remark).
#include "bench/bench_common.hpp"
#include "core/beta_augment.hpp"
#include "seq/exact_small.hpp"
#include "seq/hungarian.hpp"

using namespace lps;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int trials = static_cast<int>(opts.get_int("trials", 3));

  bench::print_header(
      "REMARK: (1-eps)-MWM via beta-augmentations (Hougardy–Vinkemeier "
      "adaptation through Algorithm 2)",
      "fixed point with no positive beta-augmentation => w(M) >= "
      "beta/(beta+1) w(M*) (via the paper's Lemma 4.2); messages of "
      "linear size");

  Table t({"workload", "beta", "floor b/(b+1)", "ratio (min)",
           "phases (mean)", "rounds (mean)", "max msg bits"});
  struct W {
    std::string name;
    NodeId n;
    bool bipartite;
  };
  for (const W& wl : {W{"bipartite ER n=64", 64, true},
                      W{"general ER n=48", 48, false}}) {
    for (const int beta : {1, 2, 3}) {
      double min_ratio = 2.0;
      StreamingStats phases, rounds;
      std::uint64_t max_bits = 0;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(1200 + wl.n * 3 + trial);
        WeightedGraph wg = [&] {
          if (wl.bipartite) {
            auto bg = random_bipartite(wl.n / 2, wl.n / 2, 6.0 / wl.n, rng);
            auto w = uniform_weights(bg.graph.num_edges(), 1.0, 50.0, rng);
            return make_weighted(std::move(bg.graph), std::move(w));
          }
          Graph g = erdos_renyi(wl.n, 5.0 / wl.n, rng);
          auto w = uniform_weights(g.num_edges(), 1.0, 50.0, rng);
          return make_weighted(std::move(g), std::move(w));
        }();
        LocalMwmOptions o;
        o.beta = beta;
        const LocalMwmResult res = local_mwm(wg, o);
        double opt = -1;
        if (wl.bipartite) {
          const auto side = wg.graph.bipartition();
          opt = hungarian_mwm(wg, *side).weight(wg);
        } else {
          opt = bench::mwm_upper_bound(wg);  // certified upper bound
        }
        if (opt > 0) {
          min_ratio = std::min(min_ratio, res.matching.weight(wg) / opt);
        }
        phases.add(static_cast<double>(res.phases));
        rounds.add(static_cast<double>(res.stats.rounds));
        max_bits = std::max(max_bits, res.stats.max_message_bits);
      }
      t.row();
      t.cell(wl.name + (wl.bipartite ? " (exact OPT)" : " (certified)"));
      t.cell(beta);
      t.cell(static_cast<double>(beta) / (beta + 1), 4);
      t.cell(min_ratio, 4);
      t.cell(phases.mean(), 4);
      t.cell(rounds.mean(), 5);
      t.cell(static_cast<std::size_t>(max_bits));
    }
  }
  bench::print_table(t);

  bench::print_header(
      "REMARK.b: the greedy trap across beta",
      "beta = 1 is wrap-limited (~1/2 on trapped gadgets); beta >= 2 "
      "repairs every gadget");
  Table trap({"beta", "weight", "optimum", "ratio"});
  const WeightedGraph wg = greedy_trap_path(16, 0.01);
  for (const int beta : {1, 2, 3}) {
    LocalMwmOptions o;
    o.beta = beta;
    const LocalMwmResult res = local_mwm(wg, o);
    trap.row();
    trap.cell(beta);
    trap.cell(res.matching.weight(wg), 5);
    trap.cell(32.0, 4);
    trap.cell(res.matching.weight(wg) / 32.0, 4);
  }
  bench::print_table(trap);
  return 0;
}
