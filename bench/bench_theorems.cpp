// Experiment suite THEOREMS — the paper's headline claims (Theorems
// 3.1, 3.8, 3.11, 4.5 and the Section 1 baseline positioning), driven
// from one declarative table over the api runner. Each row is
// (experiment, workload, generator spec, solver name, config, trials);
// the runner owns instance construction, oracle resolution, and JSON
// emission, so adding a scenario or algorithm is a table row, not a new
// driver. Replaces the former bench_baselines, bench_t31_generic,
// bench_t38_bipartite, bench_t311_general, and bench_t45_weighted.
//
//   ./bench_theorems [--trials 3] [--filter T3.8] [--json-dir bench/out]
//                    [--json false]
#include <exception>
#include <string>
#include <vector>

#include "api/runner.hpp"
#include "bench/bench_common.hpp"

using namespace lps;

namespace {

struct Row {
  const char* experiment;
  const char* workload;   // display label
  const char* generator;  // api::make_instance spec
  const char* solver;     // registry name
  const char* config;     // solver config kv list
  int trials;             // 0 = --trials
  bool feed_oracle;       // pass the exact optimum to the solver
  std::uint64_t fixed_seed;  // 0 = per-row seeds; else shared instance
};

struct Experiment {
  const char* key;
  const char* title;
  const char* claim;
};

const Experiment kExperiments[] = {
    {"BASE.a",
     "BASE.a: unweighted algorithms on shared workloads",
     "Israeli-Itai [15] guarantees 1/2 in O(log n) rounds; Theorems "
     "3.1/3.8/3.11 push the guarantee to 1-eps in the same asymptotic "
     "budget"},
    {"BASE.b",
     "BASE.b: weighted algorithms on shared workloads",
     "greedy is 1/2 sequentially; Theorem 4.5 achieves (1/2-eps) "
     "distributedly; the greedy-trap instance separates them from naive "
     "local choices"},
    {"T3.1",
     "T3.1: generic (1-eps)-MCM, Erdos-Renyi sweep",
     "(1-eps)-MCM in O(eps^-3 log n) rounds w.h.p., messages O(|V|+|E|) "
     "bits [LOCAL]"},
    {"T3.1-inv",
     "T3.1.b: Lemma 3.4 invariant audit",
     "after phase l, the shortest augmenting path exceeds l (the solver "
     "throws if the exact bounded-path oracle finds one)"},
    {"T3.8",
     "T3.8: bipartite CONGEST engine, random bipartite sweep",
     "(1-1/k)-MCM in O(k^3 log Delta + k^2 log n) rounds, O(log Delta)-"
     "bit messages; contrast max-msg-bits with the LOCAL T3.1 column"},
    {"T3.11",
     "T3.11: Algorithm 4 on general graphs",
     "(1-1/k)-MCM w.h.p. via random bipartition; iteration budget "
     "2^{2k+1}(k+1) ln k (paper) vs adaptive certified stopping"},
    {"T3.11-prog",
     "T3.11.b: Lemma 3.9 progress per iteration",
     "the gap to (1-1/(k+1))|M*| decays geometrically with the paper-"
     "mode iteration count (shared instance across rows)"},
    {"T4.5",
     "T4.5.a: Algorithm 5 ratio sweep",
     "w(M) >= (1/2 - eps) w(M*) in O(log(1/eps) log n) rounds; at scale "
     "the ratio is certified against the 2x-greedy upper bound"},
    {"T4.5-conv",
     "T4.5.b: Lemma 4.3 convergence curve",
     "w(M_i) >= (1 - e^{-2 delta i/3}) w(M*)/2: the ratio column climbs "
     "with the iteration cap (shared instance across rows)"},
    {"T4.5-delta",
     "T4.5.c: measured delta of the class-based black box",
     "the stand-in for [18] must deliver a constant delta; the paper "
     "plugs in delta = 1/5 (ratio column = measured delta)"},
};

const Row kRows[] = {
    // ------------------------------------------------------- BASE.a --
    {"BASE.a", "ER n=128 deg4", "er:n=128,deg=4", "israeli_itai", "", 0, false, 0},
    {"BASE.a", "ER n=128 deg4", "er:n=128,deg=4", "generic_mcm", "eps=0.34", 0, false, 0},
    {"BASE.a", "ER n=128 deg4", "er:n=128,deg=4", "general_mcm", "k=3", 0, true, 0},
    {"BASE.a", "bip n=128 deg4", "bipartite:nx=64,ny=64,deg=4", "israeli_itai", "", 0, false, 0},
    {"BASE.a", "bip n=128 deg4", "bipartite:nx=64,ny=64,deg=4", "generic_mcm", "eps=0.34", 0, false, 0},
    {"BASE.a", "bip n=128 deg4", "bipartite:nx=64,ny=64,deg=4", "bipartite_mcm", "k=3", 0, false, 0},
    {"BASE.a", "bip n=128 deg4", "bipartite:nx=64,ny=64,deg=4", "general_mcm", "k=3", 0, true, 0},
    {"BASE.a", "grid 12x12", "grid:rows=12,cols=12", "israeli_itai", "", 0, false, 0},
    {"BASE.a", "grid 12x12", "grid:rows=12,cols=12", "generic_mcm", "eps=0.34", 0, false, 0},
    {"BASE.a", "grid 12x12", "grid:rows=12,cols=12", "bipartite_mcm", "k=3", 0, false, 0},
    {"BASE.a", "grid 12x12", "grid:rows=12,cols=12", "general_mcm", "k=3", 0, true, 0},
    // ------------------------------------------------------- BASE.b --
    // increasing_path is the Theta(n)-round worst case for Hoepman's
    // deterministic protocol (contrast with class_mwm's O(log n)).
    {"BASE.b", "increasing path n=64", "increasing_path:n=64", "hoepman_mwm", "", 1, false, 0},
    {"BASE.b", "increasing path n=64", "increasing_path:n=64", "class_mwm", "", 1, false, 0},
    {"BASE.b", "bip ER n=128 w~U[1,100]", "bipartite:nx=64,ny=64,deg=6,w=uniform,wlo=1,whi=100", "greedy_mwm", "", 0, false, 0},
    {"BASE.b", "bip ER n=128 w~U[1,100]", "bipartite:nx=64,ny=64,deg=6,w=uniform,wlo=1,whi=100", "hoepman_mwm", "", 0, false, 0},
    {"BASE.b", "bip ER n=128 w~U[1,100]", "bipartite:nx=64,ny=64,deg=6,w=uniform,wlo=1,whi=100", "class_mwm", "", 0, false, 0},
    {"BASE.b", "bip ER n=128 w~U[1,100]", "bipartite:nx=64,ny=64,deg=6,w=uniform,wlo=1,whi=100", "weighted_mwm", "eps=0.05", 0, false, 0},
    {"BASE.b", "greedy trap x16", "greedy_trap:gadgets=16,eps=0.001", "greedy_mwm", "", 0, false, 0},
    {"BASE.b", "greedy trap x16", "greedy_trap:gadgets=16,eps=0.001", "hoepman_mwm", "", 0, false, 0},
    {"BASE.b", "greedy trap x16", "greedy_trap:gadgets=16,eps=0.001", "class_mwm", "", 0, false, 0},
    {"BASE.b", "greedy trap x16", "greedy_trap:gadgets=16,eps=0.001", "weighted_mwm", "eps=0.05", 0, false, 0},
    // --------------------------------------------------------- T3.1 --
    {"T3.1", "ER n=32 deg4", "er:n=32,deg=4", "generic_mcm", "eps=0.5", 0, false, 0},
    {"T3.1", "ER n=32 deg4", "er:n=32,deg=4", "generic_mcm", "eps=0.34", 0, false, 0},
    {"T3.1", "ER n=64 deg4", "er:n=64,deg=4", "generic_mcm", "eps=0.5", 0, false, 0},
    {"T3.1", "ER n=64 deg4", "er:n=64,deg=4", "generic_mcm", "eps=0.34", 0, false, 0},
    {"T3.1", "ER n=128 deg4", "er:n=128,deg=4", "generic_mcm", "eps=0.5", 0, false, 0},
    {"T3.1", "ER n=128 deg4", "er:n=128,deg=4", "generic_mcm", "eps=0.34", 0, false, 0},
    {"T3.1", "ER n=256 deg4", "er:n=256,deg=4", "generic_mcm", "eps=0.5", 0, false, 0},
    {"T3.1", "ER n=256 deg4", "er:n=256,deg=4", "generic_mcm", "eps=0.34", 0, false, 0},
    // ----------------------------------------------------- T3.1-inv --
    {"T3.1-inv", "ER n=24 deg5", "er:n=24,deg=5", "generic_mcm", "eps=0.34,check_invariants=true", 0, false, 0},
    {"T3.1-inv", "ER n=24 deg5", "er:n=24,deg=5", "generic_mcm", "eps=0.25,check_invariants=true", 0, false, 0},
    {"T3.1-inv", "ER n=48 deg5", "er:n=48,deg=5", "generic_mcm", "eps=0.34,check_invariants=true", 0, false, 0},
    {"T3.1-inv", "ER n=48 deg5", "er:n=48,deg=5", "generic_mcm", "eps=0.25,check_invariants=true", 0, false, 0},
    // --------------------------------------------------------- T3.8 --
    {"T3.8", "bip n=128 deg4", "bipartite:nx=64,ny=64,deg=4", "bipartite_mcm", "k=2", 0, false, 0},
    {"T3.8", "bip n=128 deg4", "bipartite:nx=64,ny=64,deg=4", "bipartite_mcm", "k=3", 0, false, 0},
    {"T3.8", "bip n=256 deg4", "bipartite:nx=128,ny=128,deg=4", "bipartite_mcm", "k=2", 0, false, 0},
    {"T3.8", "bip n=256 deg4", "bipartite:nx=128,ny=128,deg=4", "bipartite_mcm", "k=3", 0, false, 0},
    {"T3.8", "bip n=512 deg4", "bipartite:nx=256,ny=256,deg=4", "bipartite_mcm", "k=2", 0, false, 0},
    {"T3.8", "bip n=512 deg4", "bipartite:nx=256,ny=256,deg=4", "bipartite_mcm", "k=3", 0, false, 0},
    {"T3.8", "bip n=1024 deg4", "bipartite:nx=512,ny=512,deg=4", "bipartite_mcm", "k=2", 0, false, 0},
    {"T3.8", "bip n=1024 deg4", "bipartite:nx=512,ny=512,deg=4", "bipartite_mcm", "k=3", 0, false, 0},
    {"T3.8", "bip n=2048 deg4 (width)", "bipartite:nx=1024,ny=1024,deg=4", "bipartite_mcm", "k=3", 1, false, 0},
    // -------------------------------------------------------- T3.11 --
    {"T3.11", "ER n=96 deg4", "er:n=96,deg=4", "general_mcm", "k=2", 0, true, 0},
    {"T3.11", "ER n=96 deg4", "er:n=96,deg=4", "general_mcm", "k=3", 0, true, 0},
    {"T3.11", "odd cycle C_63", "cycle:n=63", "general_mcm", "k=2", 0, true, 0},
    {"T3.11", "odd cycle C_63", "cycle:n=63", "general_mcm", "k=3", 0, true, 0},
    {"T3.11", "4-regular n=64", "regular:n=64,d=4", "general_mcm", "k=2", 0, true, 0},
    {"T3.11", "4-regular n=64", "regular:n=64,d=4", "general_mcm", "k=3", 0, true, 0},
    // --------------------------------------------------- T3.11-prog --
    {"T3.11-prog", "ER n=128 deg4, iters=1", "er:n=128,deg=4", "general_mcm", "k=3,mode=paper,max_iterations=1", 1, false, 99},
    {"T3.11-prog", "ER n=128 deg4, iters=2", "er:n=128,deg=4", "general_mcm", "k=3,mode=paper,max_iterations=2", 1, false, 99},
    {"T3.11-prog", "ER n=128 deg4, iters=4", "er:n=128,deg=4", "general_mcm", "k=3,mode=paper,max_iterations=4", 1, false, 99},
    {"T3.11-prog", "ER n=128 deg4, iters=8", "er:n=128,deg=4", "general_mcm", "k=3,mode=paper,max_iterations=8", 1, false, 99},
    {"T3.11-prog", "ER n=128 deg4, iters=16", "er:n=128,deg=4", "general_mcm", "k=3,mode=paper,max_iterations=16", 1, false, 99},
    {"T3.11-prog", "ER n=128 deg4, iters=32", "er:n=128,deg=4", "general_mcm", "k=3,mode=paper,max_iterations=32", 1, false, 99},
    // --------------------------------------------------------- T4.5 --
    {"T4.5", "bip ER n=128", "bipartite:nx=64,ny=64,deg=4,w=uniform,wlo=1,whi=100", "weighted_mwm", "eps=0.2", 0, false, 0},
    {"T4.5", "bip ER n=128", "bipartite:nx=64,ny=64,deg=4,w=uniform,wlo=1,whi=100", "weighted_mwm", "eps=0.05", 0, false, 0},
    {"T4.5", "bip ER n=256", "bipartite:nx=128,ny=128,deg=4,w=uniform,wlo=1,whi=100", "weighted_mwm", "eps=0.2", 0, false, 0},
    {"T4.5", "bip ER n=256", "bipartite:nx=128,ny=128,deg=4,w=uniform,wlo=1,whi=100", "weighted_mwm", "eps=0.05", 0, false, 0},
    {"T4.5", "general ER n=16 (exact)", "er:n=16,deg=6,w=uniform,wlo=1,whi=100", "weighted_mwm", "eps=0.2", 0, false, 0},
    {"T4.5", "general ER n=16 (exact)", "er:n=16,deg=6,w=uniform,wlo=1,whi=100", "weighted_mwm", "eps=0.05", 0, false, 0},
    {"T4.5", "general ER n=200 (certified)", "er:n=200,deg=6,w=uniform,wlo=1,whi=100", "weighted_mwm", "eps=0.2", 0, false, 0},
    {"T4.5", "general ER n=200 (certified)", "er:n=200,deg=6,w=uniform,wlo=1,whi=100", "weighted_mwm", "eps=0.05", 0, false, 0},
    // ---------------------------------------------------- T4.5-conv --
    {"T4.5-conv", "bip n=200 p=0.05, iters=1", "bipartite:nx=100,ny=100,p=0.05,w=uniform,wlo=1,whi=64", "weighted_mwm", "eps=0.01,max_iterations=1", 1, false, 5},
    {"T4.5-conv", "bip n=200 p=0.05, iters=2", "bipartite:nx=100,ny=100,p=0.05,w=uniform,wlo=1,whi=64", "weighted_mwm", "eps=0.01,max_iterations=2", 1, false, 5},
    {"T4.5-conv", "bip n=200 p=0.05, iters=3", "bipartite:nx=100,ny=100,p=0.05,w=uniform,wlo=1,whi=64", "weighted_mwm", "eps=0.01,max_iterations=3", 1, false, 5},
    {"T4.5-conv", "bip n=200 p=0.05, iters=4", "bipartite:nx=100,ny=100,p=0.05,w=uniform,wlo=1,whi=64", "weighted_mwm", "eps=0.01,max_iterations=4", 1, false, 5},
    {"T4.5-conv", "bip n=200 p=0.05, iters=6", "bipartite:nx=100,ny=100,p=0.05,w=uniform,wlo=1,whi=64", "weighted_mwm", "eps=0.01,max_iterations=6", 1, false, 5},
    {"T4.5-conv", "bip n=200 p=0.05, iters=8", "bipartite:nx=100,ny=100,p=0.05,w=uniform,wlo=1,whi=64", "weighted_mwm", "eps=0.01,max_iterations=8", 1, false, 5},
    // --------------------------------------------------- T4.5-delta --
    {"T4.5-delta", "bip ER n=128 w~U[1,256]", "bipartite:nx=64,ny=64,deg=6,w=uniform,wlo=1,whi=256", "class_mwm", "", 0, false, 0},
    {"T4.5-delta", "bip ER n=256 w~U[1,256]", "bipartite:nx=128,ny=128,deg=6,w=uniform,wlo=1,whi=256", "class_mwm", "", 0, false, 0},
};

using bench::fmt;

/// The claimed round budget for the row's theorem, so the table can
/// print rounds/claim — flat across n is the paper's scaling evidence
/// (the deleted per-theorem benches printed the same normalizations).
/// Returns 0 when the experiment has no round-shape claim.
double claim_denominator(const std::string& exp, const api::RunResult& res) {
  const double logn = std::log2(static_cast<double>(res.n) + 2.0);
  const double logd = std::log2(static_cast<double>(res.max_degree) + 2.0);
  const api::SolverConfig cfg = api::SolverConfig::parse(res.spec.config);
  if (exp == "T3.1") return logn;  // Theorem 3.1: O(eps^-3 log n)
  if (exp == "T3.8") {             // Theorem 3.8: O(k^3 logD + k^2 log n)
    const double k = static_cast<double>(cfg.get_int("k", 3));
    return k * k * k * logd + k * k * logn;
  }
  if (exp == "T4.5") {             // Theorem 4.5: O(log(1/eps) log n)
    return std::log(1.0 / cfg.get_double("eps", 0.1)) * logn;
  }
  return 0.0;
}

/// --filter matches an experiment key exactly or up to a '.'/'-'
/// separator, so "T3.1" selects T3.1 and T3.1-inv but not T3.11, and
/// "BASE" still selects BASE.a/BASE.b.
bool filter_matches(const std::string& filter, const std::string& key) {
  if (filter.empty() || key == filter) return true;
  return key.size() > filter.size() &&
         key.compare(0, filter.size(), filter) == 0 &&
         (key[filter.size()] == '.' || key[filter.size()] == '-');
}

/// Instance seeds key on the generator spec (FNV-1a), not the table row:
/// rows sharing a workload run on identical instances per trial, so the
/// cross-solver (and k=2 vs k=3) comparisons are instance-controlled.
std::uint64_t workload_seed(const char* generator) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char* p = generator; *p; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ull;
  }
  return h % 100000;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int default_trials = static_cast<int>(opts.get_int("trials", 3));
  const std::string filter = opts.get("filter", "");
  const bool emit_json = opts.get_bool("json", true);
  const std::string json_dir = opts.get("json-dir", "bench/out");

  bool any_matched = false;
  for (const Experiment& exp : kExperiments) {
    if (!filter_matches(filter, exp.key)) continue;
    any_matched = true;
    bench::print_header(exp.title, exp.claim);
    Table t({"workload", "solver", "config", "n", "m (mean)", "guarantee",
             "ratio (min)", "ratio (mean)", "rounds (mean)", "rounds/claim",
             "max msg bits", "iters/phases (mean)", "wall ms (mean)",
             "note"});

    std::size_t row_index = 0;
    for (const Row& row : kRows) {
      ++row_index;  // global index: stable seeds under filtering
      if (std::string(row.experiment) != exp.key) continue;
      const int trials = row.trials > 0 ? row.trials : default_trials;

      StreamingStats ratio, rounds, iters, wall, edges, norm;
      std::uint64_t max_bits = 0;
      std::size_t n = 0;
      double guarantee = 0.0;
      double paper_budget = 0.0;  // Algorithm 4's 2^{2k+1}(k+1) ln k
      std::string note;
      for (int trial = 0; trial < trials; ++trial) {
        api::RunSpec spec;
        spec.generator = row.generator;
        spec.solver = row.solver;
        spec.config = row.config;
        spec.instance_seed = row.fixed_seed != 0
                                 ? row.fixed_seed
                                 : 101 + workload_seed(row.generator) +
                                       977 * trial;
        spec.solver_seed = row.fixed_seed != 0
                               ? row.fixed_seed
                               : 7 + 13 * trial + row_index;
        spec.feed_oracle = row.feed_oracle;
        api::RunResult res;
        try {
          res = api::run_one(spec);
        } catch (const std::invalid_argument&) {
          throw;  // table misconfiguration, not a measurement: fail loudly
        } catch (const std::logic_error& e) {
          // Only the invariant audit is allowed to observe a violation.
          if (std::string(exp.key) != "T3.1-inv") throw;
          note = std::string("VIOLATION: ") + e.what();
          continue;
        }
        n = res.n;
        edges.add(static_cast<double>(res.m));
        guarantee = res.guarantee;
        if (res.ratio >= 0) ratio.add(res.ratio);
        rounds.add(static_cast<double>(res.net.rounds));
        if (const double denom = claim_denominator(exp.key, res); denom > 0) {
          norm.add(static_cast<double>(res.net.rounds) / denom);
        }
        wall.add(res.wall_ms);
        max_bits = std::max(max_bits, res.net.max_message_bits);
        if (const auto it = res.metrics.find("paper_budget");
            it != res.metrics.end()) {
          paper_budget = it->second;
        }
        // Per-solver progress measure: Algorithm 4/5 iterations, the
        // Aug engine's iterations, or (generic_mcm) the phase count.
        for (const char* key : {"iterations", "aug_iterations", "phases"}) {
          if (const auto it = res.metrics.find(key); it != res.metrics.end()) {
            iters.add(it->second);
            break;
          }
        }
        if (!res.valid) note = "INVALID MATCHING";
        if (emit_json) {
          api::write_json(res, json_dir,
                          std::string(exp.key) + "_r" +
                              std::to_string(row_index) + "_t" +
                              std::to_string(trial));
        }
      }
      if (note.empty() && std::string(exp.key) == "T3.1-inv") {
        note = "invariants ok";
      }
      // T3.11: show the paper-mode iteration budget next to the
      // adaptive iterations actually used (the deleted bench's
      // headline adaptive-vs-paper comparison).
      if (note.empty() && paper_budget > 0) {
        note = "paper budget " + fmt(paper_budget, 0);
      }
      // T4.5-conv: print the Lemma 4.3 floor the ratio must clear,
      // (1 - e^{-2 delta i / 3}) / 2 with delta = 1/5 at i iterations.
      if (note.empty() && std::string(exp.key) == "T4.5-conv" &&
          iters.count() > 0) {
        note = "L4.3 floor " +
               fmt(0.5 * (1.0 - std::exp(-2.0 * 0.2 * iters.mean() / 3.0)), 4);
      }
      t.row();
      t.cell(row.workload);
      t.cell(row.solver);
      t.cell(row.config[0] ? row.config : "-");
      t.cell(n);
      // Random generators redraw edges each trial: report the mean.
      t.cell(edges.count() ? fmt(edges.mean(), 1) : std::string("-"));
      t.cell(guarantee > 0 ? fmt(guarantee, 4) : std::string("-"));
      t.cell(ratio.count() ? fmt(ratio.min(), 4) : std::string("-"));
      t.cell(ratio.count() ? fmt(ratio.mean(), 4) : std::string("-"));
      t.cell(rounds.mean(), 4);
      t.cell(norm.count() ? fmt(norm.mean(), 4) : std::string("-"));
      t.cell(static_cast<std::size_t>(max_bits));
      t.cell(iters.count() ? fmt(iters.mean(), 2) : std::string("-"));
      t.cell(wall.mean(), 3);
      t.cell(note.empty() ? "-" : note);
    }
    bench::print_table(t);
  }
  if (!any_matched) {
    std::fprintf(stderr,
                 "bench_theorems: --filter '%s' matches no experiment "
                 "(keys: BASE, T3.1, T3.8, T3.11, T4.5 and sub-keys)\n",
                 filter.c_str());
    return 1;
  }
  return 0;
}
