// Experiment FIG2 — Figure 2 of the paper: the derived gain function
// w_M and Lemma 4.1. The figure's worked example has w(M) = 14 under w,
// w_M(M') = 10 under the gain weights, and the wrapped result M'' with
// w(M'') = 26 >= w(M) + w_M(M') = 24 (strict: wraps overlap on M
// edges). We regenerate the same arithmetic on the reconstructed
// instance, then measure the Lemma 4.1 slack distribution on random
// weighted graphs.
#include "bench/bench_common.hpp"
#include "core/gain.hpp"
#include "tests/helpers.hpp"

using namespace lps;

namespace {

void fig2_arithmetic() {
  bench::print_header("FIG2.a: the Figure 2 arithmetic",
                      "w(M)=14, w_M(M')=10, w(M'') = 26 >= 24");
  const auto fig = lps::testing::make_fig2();
  const Graph& g = fig.wg.graph;
  const auto gains = gain_weights(fig.wg, fig.m);

  Table edges({"edge", "w", "in M", "w_M (gain)"});
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    edges.row();
    edges.cell(std::to_string(ed.u) + "-" + std::to_string(ed.v));
    edges.cell(fig.wg.weight(e), 4);
    edges.cell(fig.m.contains(g, e) ? "yes" : "no");
    edges.cell(gains[e], 4);
  }
  bench::print_table(edges);

  double wm_mprime = 0;
  for (EdgeId e : fig.m_prime) wm_mprime += gains[e];
  Matching m2 = fig.m;
  apply_wraps(g, m2, fig.m_prime);
  Table summary({"quantity", "value", "paper figure"});
  summary.row().cell("w(M)").cell(fig.m.weight(fig.wg), 4).cell("14");
  summary.row().cell("w_M(M')").cell(wm_mprime, 4).cell("10");
  summary.row().cell("w(M'')").cell(m2.weight(fig.wg), 4).cell("26");
  summary.row()
      .cell("w(M)+w_M(M')")
      .cell(fig.m.weight(fig.wg) + wm_mprime, 4)
      .cell("24 (Lemma 4.1 lower bound)");
  bench::print_table(summary);
}

void lemma41_slack() {
  bench::print_header(
      "FIG2.b: Lemma 4.1 on random graphs",
      "w(M ⊕ ∪wrap(e)) - w(M) - w_M(M') >= 0 always; strictly > 0 when "
      "wraps overlap");
  Table t({"n", "seed", "trials", "violations", "mean slack", "max slack",
           "overlapping trials"});
  for (const NodeId n : {20u, 40u, 80u}) {
    for (const std::uint64_t seed : {1u, 2u}) {
      Rng rng(seed * 100 + n);
      StreamingStats slack;
      std::size_t violations = 0, overlaps = 0;
      const int kTrials = 50;
      for (int trial = 0; trial < kTrials; ++trial) {
        Graph g = erdos_renyi(n, 4.0 / n, rng);
        if (g.num_edges() < 3) continue;
        auto w = uniform_weights(g.num_edges(), 1.0, 50.0, rng);
        const WeightedGraph wg = make_weighted(std::move(g), std::move(w));
        const Graph& graph = wg.graph;
        Matching m = greedy_mwm(wg);
        auto ids = m.edge_ids(graph);
        for (std::size_t i = 0; i < ids.size(); i += 2) {
          m.remove(graph, ids[i]);
        }
        const auto gains = gain_weights(wg, m);
        Matching mp(graph.num_nodes());
        for (EdgeId e = 0; e < graph.num_edges(); ++e) {
          if (m.contains(graph, e) || gains[e] <= 0) continue;
          const Edge& ed = graph.edge(e);
          if (mp.is_free(ed.u) && mp.is_free(ed.v)) mp.add(graph, e);
        }
        double gain_sum = 0;
        std::size_t wrap_edge_count = 0;
        for (EdgeId e : mp.edge_ids(graph)) {
          gain_sum += gains[e];
          wrap_edge_count += wrap_edges(graph, m, e).size();
        }
        const double before = m.weight(wg);
        Matching m2 = m;
        apply_wraps(graph, m2, mp.edge_ids(graph));
        const double s = m2.weight(wg) - before - gain_sum;
        if (s < -1e-9) ++violations;
        slack.add(s);
        // Overlap detection: union smaller than the multiset sum.
        std::vector<EdgeId> all;
        for (EdgeId e : mp.edge_ids(graph)) {
          for (EdgeId t2 : wrap_edges(graph, m, e)) all.push_back(t2);
        }
        std::sort(all.begin(), all.end());
        if (std::adjacent_find(all.begin(), all.end()) != all.end()) {
          ++overlaps;
        }
      }
      t.row();
      t.cell(static_cast<std::size_t>(n));
      t.cell(static_cast<std::size_t>(seed));
      t.cell(static_cast<std::size_t>(slack.count()));
      t.cell(violations);
      t.cell(slack.mean(), 4);
      t.cell(slack.max(), 4);
      t.cell(overlaps);
    }
  }
  bench::print_table(t);
}

}  // namespace

int main() {
  fig2_arithmetic();
  lemma41_slack();
  return 0;
}
