// Experiment suite LCA — the local computation oracle subsystem's
// headline claim: answering "is edge e matched?" through the src/lca
// oracles costs probes that grow sublinearly in n, while the global
// solve it replaces grows (at least) linearly. Each row runs the
// registered global solver once (for the wall-time baseline and the
// agreement audit) and then serves a batch of sampled edge queries
// through the paired oracle; the probes/query, queries/sec, cache hit
// rate, and agreement verdict land in the per-run JSON via the runner.
//
//   ./bench_lca [--trials 3] [--max-n 16384] [--queries 256]
//               [--threads 1] [--json-dir bench/out] [--json false]
//               [--trace out.json]
#include <string>
#include <vector>

#include "api/runner.hpp"
#include "bench/bench_common.hpp"

using namespace lps;
using bench::fmt;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int trials = static_cast<int>(opts.get_int("trials", 3));
  const std::int64_t max_n = opts.get_int("max-n", 16384);
  const std::uint64_t queries =
      static_cast<std::uint64_t>(opts.get_int("queries", 256));
  const unsigned threads = static_cast<unsigned>(opts.get_int("threads", 1));
  const bool emit_json = opts.get_bool("json", true);
  const std::string json_dir = opts.get("json-dir", "bench/out");
  const bench::TraceGuard trace(opts);

  bench::print_header(
      "LCA: oracle point queries vs the global solve",
      "probes/query grows sublinearly in n (probes/n falls as n rises) "
      "while the global solve is Omega(n); the oracle answers must agree "
      "with the global matching (agree = 1)");

  Table t({"solver", "n", "m (mean)", "global ms (mean)", "queries",
           "probes/query (mean)", "probes/n", "queries/sec", "cache hit",
           "agree"});

  for (const char* solver : {"rank_greedy_mcm", "israeli_itai"}) {
    for (const std::int64_t n : {1024, 4096, 16384, 65536}) {
      if (n > max_n) continue;
      StreamingStats edges, global_ms, ppq, qps, hit;
      int agree = 1;
      for (int trial = 0; trial < trials; ++trial) {
        api::RunSpec spec;
        spec.generator = "er:n=" + std::to_string(n) + ",deg=8";
        spec.solver = solver;
        spec.instance_seed = 101 + 977u * trial;
        spec.solver_seed = 7 + 13u * trial;
        spec.threads = threads;
        spec.oracle = "none";  // no optimum needed; the LCA leg is the point
        spec.lca = "auto";
        spec.lca_queries = queries;
        const api::RunResult res = api::run_one(spec);
        edges.add(static_cast<double>(res.m));
        global_ms.add(res.wall_ms);
        ppq.add(res.lca_probes_per_query);
        qps.add(res.lca_queries_per_sec);
        hit.add(res.lca_cache_hit_rate);
        if (res.lca_agree != 1) agree = res.lca_agree;
        if (emit_json) {
          api::write_json(res, json_dir,
                          "LCA_" + std::string(solver) + "_n" +
                              std::to_string(n) + "_t" +
                              std::to_string(trial));
        }
      }
      t.row();
      t.cell(solver);
      t.cell(static_cast<std::size_t>(n));
      t.cell(fmt(edges.mean(), 1));
      t.cell(fmt(global_ms.mean(), 3));
      t.cell(static_cast<std::size_t>(queries));
      t.cell(fmt(ppq.mean(), 2));
      t.cell(fmt(ppq.mean() / static_cast<double>(n), 5));
      t.cell(fmt(qps.mean(), 0));
      t.cell(fmt(hit.mean(), 4));
      t.cell(agree);
    }
  }
  bench::print_table(t);
  return 0;
}
