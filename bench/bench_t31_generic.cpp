// Experiment T3.1 — Theorem 3.1: the generic (1-eps)-MCM (Algorithms
// 1+2) computes a (1-eps)-approximation in O(eps^-3 log n) rounds with
// messages of O(|V|+|E|) bits (LOCAL model).
//
// Regenerated series: for each (n, eps), the approximation ratio against
// the exact optimum (blossom), the physical round count (including the
// Lemma 3.3 overlay charge), rounds normalized by log2 n (flat = the
// claimed log-scaling), and the maximum message size in bits (which
// grows with the instance — this is the LOCAL-model cost that Section
// 3.2 then eliminates for bipartite graphs).
#include "bench/bench_common.hpp"
#include "core/generic_mcm.hpp"
#include "seq/blossom.hpp"

using namespace lps;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int trials = static_cast<int>(opts.get_int("trials", 3));

  bench::print_header(
      "T3.1: generic (1-eps)-MCM, Erdos-Renyi sweep",
      "(1-eps)-MCM in O(eps^-3 log n) rounds w.h.p., messages "
      "O(|V|+|E|) bits [LOCAL]");

  Table t({"n", "m", "eps", "k", "guar. 1-1/(k+1)", "ratio (min over seeds)",
           "rounds (mean)", "rounds/log2(n)", "max msg bits", "phases"});
  for (const NodeId n : {32u, 64u, 128u, 256u}) {
    for (const double eps : {0.5, 0.34}) {
      const int k = static_cast<int>(std::ceil(1.0 / eps));
      double min_ratio = 1.0;
      StreamingStats rounds;
      std::uint64_t max_bits = 0;
      std::size_t phases = 0;
      EdgeId m_edges = 0;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(1000 + n * 17 + trial);
        Graph g = erdos_renyi(n, 4.0 / n, rng);
        m_edges = g.num_edges();
        const std::size_t opt = blossom_mcm(g).size();
        GenericMcmOptions o;
        o.eps = eps;
        o.seed = 7 * trial + n;
        const GenericMcmResult res = generic_mcm(g, o);
        if (opt > 0) {
          min_ratio = std::min(
              min_ratio, static_cast<double>(res.matching.size()) /
                             static_cast<double>(opt));
        }
        rounds.add(static_cast<double>(res.stats.rounds));
        max_bits = std::max(max_bits, res.stats.max_message_bits);
        phases = res.phases.size();
      }
      t.row();
      t.cell(static_cast<std::size_t>(n));
      t.cell(static_cast<std::size_t>(m_edges));
      t.cell(eps, 3);
      t.cell(k);
      t.cell(1.0 - 1.0 / (k + 1), 4);
      t.cell(min_ratio, 4);
      t.cell(rounds.mean(), 5);
      t.cell(rounds.mean() / std::log2(static_cast<double>(n)), 4);
      t.cell(static_cast<std::size_t>(max_bits));
      t.cell(phases);
    }
  }
  bench::print_table(t);

  bench::print_header(
      "T3.1.b: Lemma 3.4 invariant audit",
      "after phase l, the shortest augmenting path exceeds l");
  Table inv({"n", "eps", "invariant holds (all phases, all seeds)"});
  for (const NodeId n : {24u, 48u}) {
    for (const double eps : {0.34, 0.25}) {
      bool all_ok = true;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(55 + n + trial);
        Graph g = erdos_renyi(n, 5.0 / n, rng);
        GenericMcmOptions o;
        o.eps = eps;
        o.seed = trial + 3;
        o.check_invariants = true;  // throws on violation
        try {
          generic_mcm(g, o);
        } catch (const std::logic_error&) {
          all_ok = false;
        }
      }
      inv.row();
      inv.cell(static_cast<std::size_t>(n));
      inv.cell(eps, 3);
      inv.cell(all_ok ? "yes" : "NO");
    }
  }
  bench::print_table(inv);
  return 0;
}
