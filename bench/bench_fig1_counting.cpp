// Experiment FIG1 — Figure 1 of the paper: Algorithm 3's layered path
// counting on a bipartite instance. The paper's figure shows the BFS
// progressing one layer at a time with each node annotated by the sum of
// the numbers received from the previous level; this bench regenerates
// exactly that annotation for the reconstructed instance (the published
// figure's own node/edge list is not recoverable from the paper text;
// see EXPERIMENTS.md), then cross-validates the algorithm's counts
// against a brute-force path enumerator on random bipartite graphs and
// checks the Lemma 3.6 bound n_v <= Delta^{ceil(d/2)}.
#include <cmath>

#include "bench/bench_common.hpp"
#include "core/bipartite_counting.hpp"
#include "seq/greedy.hpp"
#include "tests/helpers.hpp"

using namespace lps;

namespace {

void layer_table() {
  bench::print_header(
      "FIG1.a: layer-by-layer counts on the Figure-1-style instance",
      "each node's n_v equals the number of shortest alternating paths "
      "reaching it; free Y nodes count augmenting paths (Lemma 3.6)");
  const auto fig = lps::testing::make_fig1();
  const CountingResult res =
      count_augmenting_paths(fig.graph, fig.side, fig.matching, 3, {});
  Table t({"node", "side", "status", "depth d(v)", "n_v",
           "oracle #paths(len=d)"});
  for (NodeId v = 0; v < fig.graph.num_nodes(); ++v) {
    t.row();
    t.cell("v" + std::to_string(v));
    t.cell(fig.side[v] == 0 ? "X" : "Y");
    t.cell(fig.matching.is_free(v) ? "free" : "matched");
    if (res.depth[v] == kUnreached) {
      t.cell("-").cell("0").cell("-");
      continue;
    }
    t.cell(static_cast<std::size_t>(res.depth[v]));
    t.cell(res.total[v].to_string());
    if (res.is_path_endpoint(v)) {
      t.cell(count_paths_oracle(fig.graph, fig.side, fig.matching, v,
                                static_cast<int>(res.depth[v]), {}));
    } else {
      t.cell("-");
    }
  }
  bench::print_table(t);
}

void random_cross_check() {
  bench::print_header(
      "FIG1.b: algorithm counts vs brute-force enumeration (random "
      "bipartite, shortest-depth endpoints)",
      "Lemma 3.6 equality at the shortest augmenting-path length");
  Table t({"n", "p", "seed", "endpoints checked", "count mismatches",
           "max n_v", "max msg bits"});
  for (const NodeId half : {16u, 24u, 32u}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      Rng rng(seed);
      const auto bg = random_bipartite(half, half, 3.0 / half, rng);
      Matching m = greedy_mcm(bg.graph);
      auto ids = m.edge_ids(bg.graph);
      for (std::size_t i = 0; i < ids.size(); i += 4) {
        m.remove(bg.graph, ids[i]);
      }
      const CountingResult res =
          count_augmenting_paths(bg.graph, bg.side, m, 7, {});
      std::uint32_t shortest = kUnreached;
      for (NodeId v = 0; v < bg.graph.num_nodes(); ++v) {
        if (res.is_path_endpoint(v)) {
          shortest = std::min(shortest, res.depth[v]);
        }
      }
      std::size_t checked = 0, mismatches = 0;
      double max_nv = 0;
      for (NodeId v = 0; v < bg.graph.num_nodes(); ++v) {
        if (!res.is_path_endpoint(v)) continue;
        max_nv = std::max(max_nv, res.total[v].to_double());
        if (res.depth[v] != shortest) continue;
        ++checked;
        const std::uint64_t oracle =
            count_paths_oracle(bg.graph, bg.side, m, v,
                               static_cast<int>(shortest), {});
        if (res.total[v].to_u64() != oracle) ++mismatches;
      }
      t.row();
      t.cell(static_cast<std::size_t>(2 * half));
      t.cell(3.0 / half, 3);
      t.cell(static_cast<std::size_t>(seed));
      t.cell(checked);
      t.cell(mismatches);
      t.cell(max_nv, 4);
      t.cell(static_cast<std::size_t>(res.stats.max_message_bits));
    }
  }
  bench::print_table(t);
}

void lemma36_bound() {
  bench::print_header(
      "FIG1.c: Lemma 3.6 bound n_v <= Delta^{ceil(d/2)} and the message "
      "width it implies",
      "counts fit in O(l log Delta) bits, so CONGEST chunks of O(log "
      "Delta) bits suffice (Lemma 3.7)");
  Table t({"n", "Delta", "l", "max n_v (log2)", "bound log2", "max msg bits",
           "l*log2(Delta)+slack"});
  for (const NodeId half : {32u, 64u, 128u}) {
    Rng rng(half);
    const auto bg = random_bipartite(half, half, 6.0 / half, rng);
    Matching m = greedy_mcm(bg.graph);
    auto ids = m.edge_ids(bg.graph);
    for (std::size_t i = 0; i < ids.size(); i += 3) m.remove(bg.graph, ids[i]);
    const int l = 7;
    const CountingResult res =
        count_augmenting_paths(bg.graph, bg.side, m, l, {});
    double max_log = 0, bound_log = 0;
    for (NodeId v = 0; v < bg.graph.num_nodes(); ++v) {
      if (res.depth[v] == kUnreached || res.total[v].is_zero()) continue;
      max_log = std::max(max_log, res.total[v].log2());
      bound_log = std::max(
          bound_log, std::ceil(res.depth[v] / 2.0) *
                         std::log2(static_cast<double>(bg.graph.max_degree())));
    }
    t.row();
    t.cell(static_cast<std::size_t>(2 * half));
    t.cell(static_cast<std::size_t>(bg.graph.max_degree()));
    t.cell(l);
    t.cell(max_log, 4);
    t.cell(bound_log, 4);
    t.cell(static_cast<std::size_t>(res.stats.max_message_bits));
    t.cell(l * std::log2(static_cast<double>(bg.graph.max_degree())) + 10, 4);
  }
  bench::print_table(t);
}

}  // namespace

int main() {
  layer_table();
  random_cross_check();
  lemma36_bound();
  return 0;
}
