// Experiment NEAR — "the price of being near-sighted" (the paper cites
// Kuhn–Moscibroda–Wattenhofer [17]: any distributed algorithm needs
// Omega(sqrt(log n / log log n)) rounds for a Theta(1)-approximate
// matching). A lower bound cannot be "run", but its *phenomenon* can:
// truncate the algorithms' locality and watch the approximation decay.
//
// Two series:
//   (a) Israeli–Itai truncated to r phases: ratio vs r (round-limited
//       maximal matching construction);
//   (b) the tightness ladder: on chains whose unique augmenting path has
//       length 2k+1, an engine allowed only paths <= 2k-1 sits at
//       exactly k/(k+1) — locality (path length it can see) translates
//       one-for-one into approximation quality, the Theorem 3.8
//       trade-off made exact.
#include "bench/bench_common.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/israeli_itai.hpp"
#include "seq/blossom.hpp"
#include "seq/hopcroft_karp.hpp"

using namespace lps;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int trials = static_cast<int>(opts.get_int("trials", 5));

  bench::print_header(
      "NEAR.a: round-truncated Israeli–Itai",
      "fewer rounds => smaller matchings; the [17] lower bound says "
      "*some* rounds are unavoidable for any constant ratio");
  Table t({"phases allowed", "rounds", "ratio (mean)", "ratio (min)",
           "maximal runs /trials"});
  Rng rng(4242);
  const Graph g = erdos_renyi(1024, 6.0 / 1024, rng);
  const double opt = static_cast<double>(blossom_mcm(g).size());
  for (const std::uint64_t phases : {1u, 2u, 3u, 4u, 6u, 10u, 20u}) {
    StreamingStats ratio;
    std::uint64_t rounds = 0;
    int maximal = 0;
    for (int trial = 0; trial < trials; ++trial) {
      IsraeliItaiOptions o;
      o.seed = 17 * trial + 5;
      o.max_phases = phases;
      const DistMatchingResult res = israeli_itai(g, o);
      ratio.add(static_cast<double>(res.matching.size()) / opt);
      rounds = res.stats.rounds;
      maximal += is_maximal_matching(g, res.matching) ? 1 : 0;
    }
    t.row();
    t.cell(static_cast<std::size_t>(phases));
    t.cell(static_cast<std::size_t>(rounds));
    t.cell(ratio.mean(), 4);
    t.cell(ratio.min(), 4);
    t.cell(std::to_string(maximal) + "/" + std::to_string(trials));
  }
  bench::print_table(t);

  bench::print_header(
      "NEAR.b: the tightness ladder (unique augmenting path of length "
      "2k+1)",
      "an engine limited to paths <= 2k-1 is stuck at exactly k/(k+1); "
      "allowing 2k+1 solves the instance — locality == quality");
  Table lt({"instance k", "engine k'", "sees paths <=", "|M|", "|M*|",
            "ratio", "exact k/(k+1)"});
  for (const int inst_k : {2, 3, 4}) {
    const TightChain chain = tight_bipartite_chain(inst_k, 24);
    Matching init = Matching::from_edges(chain.graph, chain.matched);
    const std::size_t optimum = hopcroft_karp(chain.graph, chain.side).size();
    for (const int engine_k : {inst_k, inst_k + 1}) {
      // Start from the adversarial pre-matching and run the phase
      // ladder up to l = 2*engine_k - 1 via Aug.
      Matching m = init;
      NetStats stats;
      for (int l = 1; l <= 2 * engine_k - 1; l += 2) {
        AugOptions o;
        o.seed = 7 + l;
        const AugResult res =
            bipartite_aug(chain.graph, chain.side, m, l, {}, o);
        stats.merge(res.stats);
      }
      lt.row();
      lt.cell(inst_k);
      lt.cell(engine_k);
      lt.cell(2 * engine_k - 1);
      lt.cell(m.size());
      lt.cell(optimum);
      lt.cell(static_cast<double>(m.size()) / static_cast<double>(optimum),
              4);
      lt.cell(static_cast<double>(inst_k) / (inst_k + 1), 4);
    }
  }
  bench::print_table(lt);
  return 0;
}
