// Shared helpers for the experiment benches: every bench prints
// markdown tables (the rows EXPERIMENTS.md records) to stdout.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "graph/generators.hpp"
#include "graph/matching.hpp"
#include "graph/weights.hpp"
#include "seq/greedy.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace lps::bench {

inline void print_header(const std::string& title, const std::string& claim) {
  std::cout << "\n## " << title << "\n\n";
  if (!claim.empty()) std::cout << "Paper claim: " << claim << "\n\n";
}

inline void print_table(const Table& t) {
  t.print_markdown(std::cout);
  std::cout << "\n" << std::flush;
}

/// Fixed-point cell formatting (Table::cell(double) prints %g).
inline std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Certified upper bound on w(M*) usable at any scale: the greedy
/// matching is a 1/2-MWM, so w(M*) <= 2 * w(greedy).
inline double mwm_upper_bound(const WeightedGraph& wg) {
  return 2.0 * greedy_mwm(wg).weight(wg);
}

}  // namespace lps::bench
