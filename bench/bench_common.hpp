// Shared helpers for the experiment benches: every bench prints
// markdown tables (the rows EXPERIMENTS.md records) to stdout.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "api/ledger.hpp"
#include "graph/generators.hpp"
#include "graph/matching.hpp"
#include "graph/weights.hpp"
#include "seq/greedy.hpp"
#include "telemetry/telemetry.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace lps::bench {

/// RAII --trace=PATH support for the experiment benches: construction
/// turns on metrics + span recording when the flag is present,
/// destruction stops recording and writes the Chrome trace. Inactive
/// without the flag.
class TraceGuard {
 public:
  explicit TraceGuard(const Options& opts) : path_(opts.get("trace", "")) {
    if (path_.empty()) return;
    telemetry::set_enabled(true);
    telemetry::Tracer::global().reset();
    telemetry::Tracer::global().set_recording(true);
  }
  ~TraceGuard() {
    if (path_.empty()) return;
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    tracer.set_recording(false);
    telemetry::set_enabled(false);
    if (tracer.write_chrome_trace(path_)) {
      std::fprintf(stderr, "trace written to %s (%zu events)\n",
                   path_.c_str(), tracer.events());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", path_.c_str());
    }
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

 private:
  const std::string path_;
};

inline void print_header(const std::string& title, const std::string& claim) {
  std::cout << "\n## " << title << "\n\n";
  if (!claim.empty()) std::cout << "Paper claim: " << claim << "\n\n";
}

inline void print_table(const Table& t) {
  t.print_markdown(std::cout);
  std::cout << "\n" << std::flush;
}

/// Fixed-point cell formatting (Table::cell(double) prints %g).
inline std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Certified upper bound on w(M*) usable at any scale: the greedy
/// matching is a 1/2-MWM, so w(M*) <= 2 * w(greedy).
inline double mwm_upper_bound(const WeightedGraph& wg) {
  return 2.0 * greedy_mwm(wg).weight(wg);
}

/// Append one bench measurement to the run ledger (api/ledger.hpp).
/// Best-effort by the ledger's own contract — a bench never fails
/// because bench/ledger.jsonl is unwritable; LPS_LEDGER=off disables.
inline void ledger_append(const std::string& config, const std::string& metric,
                          double value, bool higher_is_better,
                          unsigned threads = 1) {
  const std::string path = api::resolve_ledger_path();
  if (path.empty()) return;
  api::append_ledger_line(path, api::bench_ledger_record(config, metric, value,
                                                         higher_is_better,
                                                         threads));
}

}  // namespace lps::bench
