// Engine round-throughput sweep, perf/overhead gates and smoke checks
// behind bench_micro's custom CLI modes (--engine-json, --perf-gate,
// --shard-sweep, --trace-overhead, --obs-overhead, --smoke).
//
// This lives in its own translation unit on purpose: the engine's
// run_round<EngineStep> instantiation is the measured hot loop, and
// compiling it inside the large google-benchmark TU costs ~25% ns/msg
// at n=2^20 (code-layout/I-cache effects on this inliner-heavy TU —
// measured, not theorized; see DESIGN.md §15). bench_micro.cpp keeps
// the BM_* microbenchmarks and calls through the non-inline
// bench_detail::engine_round so the hot instantiation is emitted only
// here.
#pragma once

#include <cstdint>
#include <string>

#include "runtime/engine.hpp"

namespace lps {

// Light-traffic round workload shared by BM_EngineRound, --engine-json
// and --smoke: every 8th node sends one message on its first edge and
// keeps itself active; everyone else only wakes when a message arrives.
// Under active-set scheduling the per-round cost tracks those ~n/4
// touched nodes, not n + m.
struct EngineMsg {
  std::uint32_t x;
};
using EngineNet = SyncNetwork<EngineMsg, DefaultBitMeter<EngineMsg>>;

namespace bench_detail {
// One EngineStep round on `net`. Non-inline so callers in other TUs
// (BM_EngineRound) reuse this TU's instantiation of run_round.
void engine_round(EngineNet& net);
}  // namespace bench_detail

int run_engine_sweep(const std::string& json_path, bool smoke,
                     unsigned shards_req);
int run_shard_sweep();
int run_perf_gate(const std::string& baseline_path);
int run_trace_overhead(unsigned nexp);
int run_obs_overhead(unsigned nexp);
int run_smoke_checks();

}  // namespace lps
