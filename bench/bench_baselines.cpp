// Experiment BASE — the paper's Section 1 positioning: Israeli–Itai's
// classical randomized algorithm guarantees a maximal matching (a
// 1/2-MCM) in O(log n) rounds; this paper's algorithms push the
// guarantee to (1-eps) (unweighted) and (1/2-eps) (weighted) in the same
// asymptotic round budget.
//
// Regenerated comparison: on shared workloads, the achieved ratio and
// round count of every implemented algorithm, unweighted and weighted.
#include <functional>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/class_mwm.hpp"
#include "core/general_mcm.hpp"
#include "core/generic_mcm.hpp"
#include "core/hoepman_mwm.hpp"
#include "core/israeli_itai.hpp"
#include "core/weighted_mwm.hpp"
#include "seq/blossom.hpp"
#include "seq/greedy.hpp"
#include "seq/hopcroft_karp.hpp"
#include "seq/hungarian.hpp"

using namespace lps;

namespace {

void unweighted(int trials) {
  bench::print_header(
      "BASE.a: unweighted algorithms on shared workloads",
      "Israeli–Itai [15] guarantees 1/2; Theorem 3.1/3.8/3.11 guarantee "
      "1-eps in O(log n) rounds");
  Table t({"workload", "algorithm", "guarantee", "ratio (min)",
           "ratio (mean)", "rounds (mean)"});

  struct Workload {
    std::string name;
    std::function<Graph(int)> make;
    bool bipartite;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"ER n=128 deg4",
                       [](int t) {
                         Rng rng(100 + t);
                         return erdos_renyi(128, 4.0 / 128, rng);
                       },
                       false});
  workloads.push_back({"bip n=128 deg4",
                       [](int t) {
                         Rng rng(200 + t);
                         return random_bipartite(64, 64, 4.0 / 64, rng).graph;
                       },
                       true});
  workloads.push_back({"grid 12x12",
                       [](int) { return grid_graph(12, 12); },
                       true});

  for (const auto& wl : workloads) {
    StreamingStats ii_ratio, ii_rounds, gen_ratio, gen_rounds, bip_ratio,
        bip_rounds, g4_ratio, g4_rounds;
    for (int trial = 0; trial < trials; ++trial) {
      const Graph g = wl.make(trial);
      const double opt = static_cast<double>(blossom_mcm(g).size());
      if (opt == 0) continue;

      IsraeliItaiOptions io;
      io.seed = trial + 11;
      const auto ii = israeli_itai(g, io);
      ii_ratio.add(ii.matching.size() / opt);
      ii_rounds.add(static_cast<double>(ii.stats.rounds));

      GenericMcmOptions go;
      go.eps = 0.34;
      go.seed = trial + 21;
      const auto gen = generic_mcm(g, go);
      gen_ratio.add(gen.matching.size() / opt);
      gen_rounds.add(static_cast<double>(gen.stats.rounds));

      if (wl.bipartite) {
        const auto side = g.bipartition();
        BipartiteMcmOptions bo;
        bo.k = 3;
        bo.seed = trial + 31;
        const auto bip = bipartite_mcm(g, *side, bo);
        bip_ratio.add(bip.matching.size() / opt);
        bip_rounds.add(static_cast<double>(bip.stats.rounds));
      }

      GeneralMcmOptions g4o;
      g4o.k = 3;
      g4o.seed = trial + 41;
      g4o.oracle_optimum_size = static_cast<std::size_t>(opt);
      const auto g4 = general_mcm(g, g4o);
      g4_ratio.add(g4.matching.size() / opt);
      g4_rounds.add(static_cast<double>(g4.stats.rounds));
    }
    auto emit = [&](const std::string& algo, const std::string& guar,
                    const StreamingStats& ratio, const StreamingStats& rounds) {
      if (ratio.count() == 0) return;
      t.row();
      t.cell(wl.name);
      t.cell(algo);
      t.cell(guar);
      t.cell(ratio.min(), 4);
      t.cell(ratio.mean(), 4);
      t.cell(rounds.mean(), 5);
    };
    emit("Israeli-Itai [15]", "1/2", ii_ratio, ii_rounds);
    emit("Algorithm 1 (T3.1, LOCAL)", "3/4 (k=3)", gen_ratio, gen_rounds);
    emit("Sec. 3.2 engine (T3.8)", "3/4 (k=3)", bip_ratio, bip_rounds);
    emit("Algorithm 4 (T3.11)", "2/3 (k=3)", g4_ratio, g4_rounds);
  }
  bench::print_table(t);
}

void weighted(int trials) {
  bench::print_header(
      "BASE.b: weighted algorithms on shared workloads",
      "greedy is 1/2 sequentially; Theorem 4.5 achieves (1/2-eps) "
      "distributedly in O(log(1/eps) log n) rounds; the greedy-trap "
      "instance separates them from naive local choices");
  Table t({"workload", "algorithm", "ratio vs OPT (min)", "rounds (mean)"});
  struct W {
    std::string name;
    std::function<WeightedGraph(int)> make;
  };
  std::vector<W> wls;
  wls.push_back({"bip ER n=128 w~U[1,100]", [](int t) {
                   Rng rng(300 + t);
                   auto bg = random_bipartite(64, 64, 6.0 / 64, rng);
                   auto w = uniform_weights(bg.graph.num_edges(), 1, 100, rng);
                   return make_weighted(std::move(bg.graph), std::move(w));
                 }});
  wls.push_back({"greedy trap x16", [](int) {
                   return greedy_trap_path(16, 0.001);
                 }});
  for (const auto& wl : wls) {
    StreamingStats greedy_ratio, hoepman_ratio, hoepman_rounds, class_ratio,
        class_rounds, a5_ratio, a5_rounds;
    for (int trial = 0; trial < trials; ++trial) {
      const WeightedGraph wg = wl.make(trial);
      const auto side = wg.graph.bipartition();
      const double opt = side ? hungarian_mwm(wg, *side).weight(wg)
                              : bench::mwm_upper_bound(wg);
      greedy_ratio.add(greedy_mwm(wg).weight(wg) / opt);
      const auto hoep = hoepman_mwm(wg);
      hoepman_ratio.add(hoep.matching.weight(wg) / opt);
      hoepman_rounds.add(static_cast<double>(hoep.stats.rounds));
      ClassMwmOptions co;
      co.seed = trial + 5;
      const auto cls = class_mwm(wg, co);
      class_ratio.add(cls.matching.weight(wg) / opt);
      class_rounds.add(static_cast<double>(cls.stats.rounds));
      WeightedMwmOptions wo;
      wo.eps = 0.05;
      wo.seed = trial + 7;
      const auto a5 = weighted_mwm(wg, wo);
      a5_ratio.add(a5.matching.weight(wg) / opt);
      a5_rounds.add(static_cast<double>(a5.stats.rounds));
    }
    auto emit = [&](const std::string& algo, const StreamingStats& r,
                    double rounds) {
      t.row();
      t.cell(wl.name);
      t.cell(algo);
      t.cell(r.min(), 4);
      t.cell(rounds, 5);
    };
    emit("greedy (sequential 1/2)", greedy_ratio, 0);
    emit("Hoepman [11] (det. 1/2)", hoepman_ratio, hoepman_rounds.mean());
    emit("class black box (delta-MWM)", class_ratio, class_rounds.mean());
    emit("Algorithm 5 (T4.5)", a5_ratio, a5_rounds.mean());
  }
  bench::print_table(t);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int trials = static_cast<int>(opts.get_int("trials", 3));
  unweighted(trials);
  weighted(trials);
  return 0;
}
