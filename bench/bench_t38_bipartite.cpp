// Experiment T3.8 — Theorem 3.8: in bipartite graphs a (1-1/k)-MCM in
// O(k^3 log Delta + k^2 log n) rounds using messages of O(log Delta)
// bits (CONGEST).
//
// Regenerated series: ratio vs Hopcroft–Karp, physical rounds, rounds
// normalized by (k^3 log2 Delta + k^2 log2 n), and the maximum message
// width in bits compared to a c*(k log2 Delta + log n + 64) budget —
// constant-factor flat columns support the claimed shapes.
#include "bench/bench_common.hpp"
#include "core/bipartite_mcm.hpp"
#include "seq/hopcroft_karp.hpp"

using namespace lps;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int trials = static_cast<int>(opts.get_int("trials", 3));

  bench::print_header(
      "T3.8: bipartite CONGEST engine, random bipartite sweep",
      "(1-1/k)-MCM in O(k^3 log Delta + k^2 log n) rounds, O(log Delta)-"
      "bit messages");

  Table t({"n", "Delta", "k", "guar. 1-1/(k+1)", "ratio (min)",
           "rounds (mean)", "rounds/(k^3 lgD + k^2 lg n)", "max msg bits",
           "Aug iters (mean)"});
  for (const NodeId half : {64u, 128u, 256u, 512u}) {
    for (const int k : {2, 3}) {
      double min_ratio = 1.0;
      StreamingStats rounds, iters;
      std::uint64_t max_bits = 0;
      NodeId delta = 0;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(2000 + half * 3 + trial);
        const auto bg = random_bipartite(half, half, 4.0 / half, rng);
        delta = bg.graph.max_degree();
        const std::size_t opt = hopcroft_karp(bg.graph, bg.side).size();
        BipartiteMcmOptions o;
        o.k = k;
        o.seed = half + 31 * trial;
        const BipartiteMcmResult res = bipartite_mcm(bg.graph, bg.side, o);
        if (opt > 0) {
          min_ratio = std::min(
              min_ratio, static_cast<double>(res.matching.size()) /
                             static_cast<double>(opt));
        }
        rounds.add(static_cast<double>(res.stats.rounds));
        max_bits = std::max(max_bits, res.stats.max_message_bits);
        std::uint64_t it = 0;
        for (const auto& ph : res.phases) it += ph.iterations;
        iters.add(static_cast<double>(it));
      }
      const double logd = std::log2(static_cast<double>(delta) + 2.0);
      const double logn = std::log2(2.0 * half);
      const double denom = k * k * k * logd + k * k * logn;
      t.row();
      t.cell(static_cast<std::size_t>(2 * half));
      t.cell(static_cast<std::size_t>(delta));
      t.cell(k);
      t.cell(1.0 - 1.0 / (k + 1), 4);
      t.cell(min_ratio, 4);
      t.cell(rounds.mean(), 5);
      t.cell(rounds.mean() / denom, 4);
      t.cell(static_cast<std::size_t>(max_bits));
      t.cell(iters.mean(), 4);
    }
  }
  bench::print_table(t);

  bench::print_header(
      "T3.8.b: message width is O(log Delta), not O(n)",
      "contrast with the LOCAL generic algorithm whose messages grow "
      "with the instance (T3.1)");
  Table w({"n", "Delta", "max msg bits (CONGEST engine)",
           "k*lg(Delta)+lg(n)+64 budget"});
  for (const NodeId half : {64u, 256u, 1024u}) {
    Rng rng(half);
    const auto bg = random_bipartite(half, half, 4.0 / half, rng);
    BipartiteMcmOptions o;
    o.k = 3;
    o.seed = half;
    const BipartiteMcmResult res = bipartite_mcm(bg.graph, bg.side, o);
    w.row();
    w.cell(static_cast<std::size_t>(2 * half));
    w.cell(static_cast<std::size_t>(bg.graph.max_degree()));
    w.cell(static_cast<std::size_t>(res.stats.max_message_bits));
    w.cell(3 * std::log2(bg.graph.max_degree() + 2.0) +
               std::log2(2.0 * half) + 64,
           4);
  }
  bench::print_table(w);
  return 0;
}
