// Experiment T4.5 — Theorem 4.5: (1/2 - eps)-MWM in O(log(1/eps) log n)
// rounds via the black-box reduction (Algorithm 5).
//
// Regenerated series:
//   (a) ratio vs the exact optimum (Hungarian on bipartite instances,
//       exhaustive on small general ones, certified 2*greedy upper
//       bound at scale) across n and eps;
//   (b) the Lemma 4.3 convergence curve w(M_i)/w(M*) against the
//       predicted floor (1 - e^{-2 delta i/3})/2;
//   (c) the measured quality delta of the class-based black box, the
//       documented stand-in for [18] (DESIGN.md §4).
#include "bench/bench_common.hpp"
#include "core/class_mwm.hpp"
#include "core/weighted_mwm.hpp"
#include "seq/exact_small.hpp"
#include "seq/hungarian.hpp"

using namespace lps;

namespace {

void main_sweep(int trials) {
  bench::print_header(
      "T4.5.a: Algorithm 5 ratio sweep",
      "w(M) >= (1/2 - eps) w(M*) in O(log(1/eps) log n) rounds");
  Table t({"workload", "n", "eps", "ratio vs OPT (min)",
           "certified ratio (vs 2*greedy)", "rounds (mean)",
           "rounds/(log(1/eps) log2 n)", "iterations"});
  struct Row {
    std::string name;
    NodeId n;
    bool bipartite;
  };
  for (const Row& row : {Row{"bipartite ER", 128, true},
                         Row{"bipartite ER", 256, true},
                         Row{"general ER (small, exact)", 16, false},
                         Row{"general ER (certified)", 200, false}}) {
    for (const double eps : {0.2, 0.05}) {
      double min_ratio = 2.0;
      double min_cert = 2.0;
      StreamingStats rounds, iterations;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(6000 + row.n * 7 + trial);
        WeightedGraph wg = [&] {
          if (row.bipartite) {
            auto bg = random_bipartite(row.n / 2, row.n / 2, 8.0 / row.n, rng);
            auto w = uniform_weights(bg.graph.num_edges(), 1.0, 100.0, rng);
            return make_weighted(std::move(bg.graph), std::move(w));
          }
          Graph g = erdos_renyi(row.n, 6.0 / row.n, rng);
          auto w = uniform_weights(g.num_edges(), 1.0, 100.0, rng);
          return make_weighted(std::move(g), std::move(w));
        }();
        WeightedMwmOptions o;
        o.eps = eps;
        o.seed = trial * 13 + 1;
        const WeightedMwmResult res = weighted_mwm(wg, o);
        const double w_res = res.matching.weight(wg);
        double opt = -1.0;
        if (row.bipartite) {
          const auto side = wg.graph.bipartition();
          opt = hungarian_mwm(wg, *side).weight(wg);
        } else if (row.n <= 20) {
          opt = exact_mwm_small(wg).weight(wg);
        }
        if (opt > 0) min_ratio = std::min(min_ratio, w_res / opt);
        min_cert = std::min(min_cert, w_res / bench::mwm_upper_bound(wg));
        rounds.add(static_cast<double>(res.stats.rounds));
        iterations.add(static_cast<double>(res.iterations));
      }
      t.row();
      t.cell(row.name);
      t.cell(static_cast<std::size_t>(row.n));
      t.cell(eps, 3);
      t.cell(min_ratio > 1.5 ? -1.0 : min_ratio, 4);
      t.cell(min_cert, 4);
      t.cell(rounds.mean(), 5);
      t.cell(rounds.mean() /
                 (std::log(1.0 / eps) * std::log2(static_cast<double>(row.n))),
             4);
      t.cell(iterations.mean(), 4);
    }
  }
  bench::print_table(t);
}

void convergence_curve() {
  bench::print_header(
      "T4.5.b: Lemma 4.3 convergence curve",
      "w(M_i) >= (1 - e^{-2 delta i / 3}) w(M*)/2 with delta = 1/5 "
      "assumed for the black box");
  Rng rng(7000);
  auto bg = random_bipartite(100, 100, 0.05, rng);
  auto w = uniform_weights(bg.graph.num_edges(), 1.0, 64.0, rng);
  const WeightedGraph wg = make_weighted(std::move(bg.graph), std::move(w));
  const auto side = wg.graph.bipartition();
  const double opt = hungarian_mwm(wg, *side).weight(wg);
  WeightedMwmOptions o;
  o.eps = 0.01;
  o.delta = 0.2;
  o.seed = 5;
  const WeightedMwmResult res = weighted_mwm(wg, o);
  Table t({"iteration i", "w(M_i)/w(M*)", "Lemma 4.3 floor"});
  for (std::size_t i = 0; i < res.weight_trajectory.size(); ++i) {
    t.row();
    t.cell(i + 1);
    t.cell(res.weight_trajectory[i] / opt, 4);
    t.cell(0.5 * (1.0 - std::exp(-2.0 * 0.2 * static_cast<double>(i + 1) /
                                 3.0)),
           4);
  }
  bench::print_table(t);
}

void blackbox_delta(int trials) {
  bench::print_header(
      "T4.5.c: measured delta of the class-based black box",
      "the substitution for [18] must deliver a constant delta; the "
      "paper plugs in delta = 1/5 (Lemma 4.4 gives 1/4 - eps)");
  Table t({"workload", "n", "delta measured (min)", "rounds (mean)",
           "classes"});
  for (const NodeId half : {64u, 128u}) {
    double min_delta = 2.0;
    StreamingStats rounds;
    std::size_t classes = 0;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(8000 + half + trial);
      auto bg = random_bipartite(half, half, 6.0 / half, rng);
      auto w = uniform_weights(bg.graph.num_edges(), 1.0, 256.0, rng);
      const WeightedGraph wg =
          make_weighted(std::move(bg.graph), std::move(w));
      const auto side = wg.graph.bipartition();
      const double opt = hungarian_mwm(wg, *side).weight(wg);
      ClassMwmOptions o;
      o.seed = trial + 1;
      const ClassMwmResult res = class_mwm(wg, o);
      if (opt > 0) {
        min_delta = std::min(min_delta, res.matching.weight(wg) / opt);
      }
      rounds.add(static_cast<double>(res.stats.rounds));
      classes = res.num_classes;
    }
    t.row();
    t.cell("bipartite ER uniform[1,256]");
    t.cell(static_cast<std::size_t>(2 * half));
    t.cell(min_delta, 4);
    t.cell(rounds.mean(), 5);
    t.cell(classes);
  }
  bench::print_table(t);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int trials = static_cast<int>(opts.get_int("trials", 3));
  main_sweep(trials);
  convergence_curve();
  blackbox_delta(trials);
  return 0;
}
