// Experiment SWITCH — the paper's motivating application (Section 1):
// input-queued switch scheduling. The introduction's narrative: larger
// matchings => higher throughput; PIM [3] grew out of Israeli–Itai's
// ideas and iSLIP [23] refined it; this paper's bipartite engine
// produces near-maximum matchings within a CONGEST round budget.
//
// Regenerated table: per (traffic pattern, load, scheduler):
// normalized throughput, mean delay, p99 delay, mean queue occupancy.
// Expected shape: MaxWeight/MaxSize oracles stable everywhere; PIM,
// iSLIP and DistMCM close at uniform loads; greedy and low-iteration
// PIM degrade first under high/asymmetric load.
#include <memory>

#include "bench/bench_common.hpp"
#include "switch/voq.hpp"

using namespace lps;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::size_t ports = static_cast<std::size_t>(opts.get_int("ports", 8));
  const std::uint64_t slots =
      static_cast<std::uint64_t>(opts.get_int("slots", 6000));

  bench::print_header(
      "SWITCH: VOQ crossbar, schedulers under Bernoulli traffic",
      "larger matchings -> higher throughput / lower delay (Section 1)");

  Table t({"pattern", "load", "scheduler", "throughput", "mean delay",
           "p99 delay", "mean queue"});
  for (const TrafficPattern pattern :
       {TrafficPattern::kUniform, TrafficPattern::kDiagonal}) {
    for (const double load : {0.5, 0.8, 0.95}) {
      struct Entry {
        std::string label;
        std::unique_ptr<Scheduler> sched;
      };
      std::vector<Entry> entries;
      entries.push_back({"PIM-1", std::make_unique<PimScheduler>(1, 1)});
      entries.push_back({"PIM-4", std::make_unique<PimScheduler>(4, 1)});
      entries.push_back({"iSLIP-4", std::make_unique<IslipScheduler>(4)});
      entries.push_back({"Greedy-LQF", std::make_unique<GreedyScheduler>()});
      entries.push_back(
          {"DistMCM-k2", std::make_unique<DistMcmScheduler>(2, 1)});
      entries.push_back({"MaxSize", std::make_unique<MaxSizeScheduler>()});
      entries.push_back({"MaxWeight", std::make_unique<MaxWeightScheduler>()});
      for (auto& entry : entries) {
        SwitchConfig cfg;
        cfg.ports = ports;
        cfg.slots = slots;
        cfg.warmup = slots / 10;
        cfg.load = load;
        cfg.pattern = pattern;
        cfg.seed = 42;
        const SwitchMetrics m = run_switch(cfg, *entry.sched);
        t.row();
        t.cell(to_string(pattern));
        t.cell(load, 3);
        t.cell(entry.label);
        t.cell(m.normalized_throughput, 4);
        t.cell(m.mean_delay, 4);
        t.cell(m.p99_delay, 4);
        t.cell(m.mean_queue, 4);
      }
    }
  }
  bench::print_table(t);
  return 0;
}
